package server

import (
	"sync"

	"repro/internal/core"
	"repro/internal/rating"
)

// defaultReadCacheObjects bounds the aggregate cache; past it an
// arbitrary entry is evicted per insert.
const defaultReadCacheObjects = 4096

// readCache memoizes the two read-path answers that are expensive to
// recompute and cheap to invalidate precisely: per-object aggregates
// and the malicious-rater list. Correctness contract: a cached answer
// is bit-identical to what the backend would produce right now. That
// holds because every mutation that could change an answer
// invalidates it before the mutating request is acknowledged:
//
//   - submitting ratings for object X drops X's aggregate (trust is
//     untouched by a submit, so other objects and the malicious list
//     keep their entries);
//   - a maintenance window or snapshot restore rewrites trust, which
//     feeds every aggregate and the malicious list: the whole cache
//     drops.
//
// Fills race with invalidation: a reader may compute an aggregate,
// lose the CPU, and try to store it after a submit invalidated that
// object. Generation numbers close the hole — a fill records the
// object's (global, per-object) generation before computing and the
// store is discarded unless both still match.
//
// A nil *readCache is valid and disables caching (every lookup
// misses, every store is dropped).
type readCache struct {
	mu  sync.Mutex
	cap int

	globalGen uint64 // bumped by invalidateAll
	objGen    map[rating.ObjectID]uint64
	agg       map[rating.ObjectID]core.AggregateResult

	mal      []rating.RaterID
	malValid bool
}

// cacheGen is a fill's pre-computation snapshot of the generations it
// must match at store time.
type cacheGen struct {
	global uint64
	obj    uint64
}

func newReadCache(capacity int) *readCache {
	return &readCache{
		cap:    capacity,
		objGen: make(map[rating.ObjectID]uint64),
		agg:    make(map[rating.ObjectID]core.AggregateResult),
	}
}

// aggregate looks up obj's cached aggregate.
func (c *readCache) aggregate(obj rating.ObjectID, m *serverMetrics) (core.AggregateResult, bool) {
	if c == nil {
		return core.AggregateResult{}, false
	}
	c.mu.Lock()
	res, ok := c.agg[obj]
	c.mu.Unlock()
	if ok {
		m.cacheHit("aggregate")
	} else {
		m.cacheMiss("aggregate")
	}
	return res, ok
}

// snapshotGen records the generations a fill for obj must match.
func (c *readCache) snapshotGen(obj rating.ObjectID) cacheGen {
	if c == nil {
		return cacheGen{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheGen{global: c.globalGen, obj: c.objGen[obj]}
}

// storeAggregate caches a computed aggregate unless obj was
// invalidated since gen was snapshotted.
func (c *readCache) storeAggregate(obj rating.ObjectID, res core.AggregateResult, gen cacheGen) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen.global != c.globalGen || gen.obj != c.objGen[obj] {
		return // stale fill: a mutation landed mid-computation
	}
	if len(c.agg) >= c.cap {
		for evict := range c.agg {
			delete(c.agg, evict)
			break
		}
	}
	c.agg[obj] = res
}

// malicious returns the cached malicious-rater list. Callers must not
// mutate the returned slice.
func (c *readCache) malicious(m *serverMetrics) ([]rating.RaterID, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	ids, ok := c.mal, c.malValid
	c.mu.Unlock()
	if ok {
		m.cacheHit("malicious")
	} else {
		m.cacheMiss("malicious")
	}
	return ids, ok
}

// snapshotGlobalGen records the generation a malicious-list fill must
// match (the list depends only on trust, so the global generation
// covers it).
func (c *readCache) snapshotGlobalGen() cacheGen {
	if c == nil {
		return cacheGen{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheGen{global: c.globalGen}
}

// storeMalicious caches the computed list unless trust changed since
// gen was snapshotted.
func (c *readCache) storeMalicious(ids []rating.RaterID, gen cacheGen) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen.global != c.globalGen {
		return
	}
	c.mal, c.malValid = ids, true
}

// invalidateRatings drops the aggregates of exactly the objects the
// accepted batch touched. Trust is unchanged by a submit, so the
// malicious list and other objects' aggregates stay cached.
func (c *readCache) invalidateRatings(rs []rating.Rating) {
	if c == nil || len(rs) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range rs {
		c.bumpLocked(r.Object)
	}
}

// invalidateObjects is invalidateRatings for a pre-collected object
// set (the stream path tracks objects per batch).
func (c *readCache) invalidateObjects(objs map[rating.ObjectID]struct{}) {
	if c == nil || len(objs) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for obj := range objs {
		c.bumpLocked(obj)
	}
}

func (c *readCache) bumpLocked(obj rating.ObjectID) {
	delete(c.agg, obj)
	c.objGen[obj]++
	// The per-object generation map tracks every object ever
	// invalidated; past a multiple of the cache cap, fold it into one
	// global bump instead of growing forever.
	if len(c.objGen) > 4*c.cap {
		c.globalGen++
		c.objGen = make(map[rating.ObjectID]uint64)
	}
}

// invalidateAll drops everything: maintenance windows and snapshot
// restores rewrite trust, which every cached answer depends on.
func (c *readCache) invalidateAll() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.globalGen++
	clear(c.agg)
	c.objGen = make(map[rating.ObjectID]uint64)
	c.mal, c.malValid = nil, false
}
