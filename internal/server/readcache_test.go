package server

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/randx"
	"repro/internal/rating"
	"repro/internal/telemetry"
)

// cachedPair builds two servers over identically-seeded backends, one
// with the read cache and one without, both instrumented.
func cachedPair(t *testing.T) (cached, uncached *Client, reg *telemetry.Registry) {
	t.Helper()
	reg = telemetry.NewRegistry()
	mk := func(opts ...Option) *Client {
		srv, err := New(core.Config{Detector: detector.Config{Threshold: 0.05}}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		return NewClient(ts.URL, ts.Client())
	}
	return mk(WithTelemetry(reg)), mk(WithReadCache(-1)), reg
}

// cacheCounter reads one read-cache counter child; registration is
// idempotent, so this resolves the server's own metric family.
func cacheCounter(reg *telemetry.Registry, kind, result string) uint64 {
	return reg.CounterVec("http_read_cache_total", "", "kind", "result").With(kind, result).Value()
}

// TestReadCacheConformance drives an interleaved workload through a
// cached and an uncached server and requires every read answer to be
// bit-identical — the cache must be invisible except in latency.
func TestReadCacheConformance(t *testing.T) {
	cached, uncached, _ := cachedPair(t)
	ctx := context.Background()
	rng := randx.New(99)

	step := func(do func(c *Client) (string, error)) {
		a, errA := do(cached)
		b, errB := do(uncached)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("cached err %v, uncached err %v", errA, errB)
		}
		if a != b {
			t.Fatalf("cached answer %q != uncached %q", a, b)
		}
	}

	for i := 0; i < 400; i++ {
		switch rng.Intn(5) {
		case 0: // submit a small batch
			batch := []RatingPayload{{
				Rater:  rng.Intn(20) + 1,
				Object: rng.Intn(4),
				Value:  math.Round(rng.Float64()*100) / 100,
				Time:   float64(i),
			}}
			step(func(c *Client) (string, error) {
				n, err := c.Submit(ctx, batch)
				return fmt.Sprint(n), err
			})
		case 1: // read an aggregate (often repeatedly → cache hits)
			obj := rng.Intn(4)
			step(func(c *Client) (string, error) {
				agg, err := c.Aggregate(ctx, obj)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("%+v|%x", agg, math.Float64bits(agg.Value)), nil
			})
		case 2: // malicious list
			step(func(c *Client) (string, error) {
				ids, err := c.Malicious(ctx)
				return fmt.Sprint(ids), err
			})
		case 3: // stats (uncached route, sanity anchor)
			step(func(c *Client) (string, error) {
				st, err := c.Stats(ctx)
				return fmt.Sprintf("%+v", st), err
			})
		case 4: // occasional maintenance window rewrites trust
			if i%50 != 0 || i == 0 {
				continue
			}
			step(func(c *Client) (string, error) {
				rep, err := c.Process(ctx, 0, float64(i))
				return fmt.Sprintf("%+v", rep), err
			})
		}
	}
}

// TestReadCachePrecision asserts the invalidation scope: a submit to
// object A must drop only A's aggregate; B's next read is still a hit.
// A process pass must drop everything.
func TestReadCachePrecision(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv, err := New(core.Config{Detector: detector.Config{Threshold: 0.05}}, WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	seed := []RatingPayload{
		{Rater: 1, Object: 0, Value: 0.4, Time: 1},
		{Rater: 2, Object: 0, Value: 0.6, Time: 2},
		{Rater: 1, Object: 1, Value: 0.9, Time: 1},
		{Rater: 2, Object: 1, Value: 0.7, Time: 2},
	}
	if _, err := client.Submit(ctx, seed); err != nil {
		t.Fatal(err)
	}

	hits := func() uint64 {
		return cacheCounter(reg, "aggregate", "hit")
	}
	read := func(obj int) {
		t.Helper()
		if _, err := client.Aggregate(ctx, obj); err != nil {
			t.Fatal(err)
		}
	}

	read(0) // miss, fills
	read(1) // miss, fills
	base := hits()
	read(0)
	read(1)
	if got := hits(); got != base+2 {
		t.Fatalf("warm reads: hits %v -> %v, want +2", base, got)
	}

	// Submit to object 0: only object 0's entry drops.
	if _, err := client.Submit(ctx, []RatingPayload{{Rater: 3, Object: 0, Value: 0.5, Time: 3}}); err != nil {
		t.Fatal(err)
	}
	base = hits()
	read(1) // still cached
	if got := hits(); got != base+1 {
		t.Fatalf("object 1 lost its entry to an object-0 submit (hits %v -> %v)", base, got)
	}
	base = hits()
	read(0) // invalidated: refill, no hit
	if got := hits(); got != base {
		t.Fatalf("object 0 served stale cache after submit (hits %v -> %v)", base, got)
	}

	// A maintenance window drops everything.
	read(0)
	if _, err := client.Process(ctx, 0, 10); err != nil {
		t.Fatal(err)
	}
	base = hits()
	read(0)
	read(1)
	if got := hits(); got != base {
		t.Fatalf("process left aggregate entries cached (hits %v -> %v)", base, got)
	}
}

// TestReadCacheStaleFillDiscarded unit-tests the generation protocol:
// a fill whose object was invalidated mid-computation must be dropped.
func TestReadCacheStaleFillDiscarded(t *testing.T) {
	c := newReadCache(8)
	obj := rating.ObjectID(1)

	gen := c.snapshotGen(obj)
	// An invalidation lands between snapshot and store.
	c.invalidateRatings([]rating.Rating{{Rater: 1, Object: obj, Value: 0.5, Time: 1}})
	c.storeAggregate(obj, core.AggregateResult{Object: obj, Value: 0.9}, gen)
	if _, ok := c.aggregate(obj, nil); ok {
		t.Fatal("stale fill was cached")
	}

	// A fresh fill with a current generation sticks.
	gen = c.snapshotGen(obj)
	c.storeAggregate(obj, core.AggregateResult{Object: obj, Value: 0.9}, gen)
	if res, ok := c.aggregate(obj, nil); !ok || res.Value != 0.9 {
		t.Fatalf("fresh fill not cached: %+v %v", res, ok)
	}

	// invalidateAll also kills in-flight malicious fills.
	mgen := c.snapshotGlobalGen()
	c.invalidateAll()
	c.storeMalicious([]rating.RaterID{3}, mgen)
	if _, ok := c.malicious(nil); ok {
		t.Fatal("stale malicious fill was cached")
	}
}

// TestReadCacheEvictionBound keeps the aggregate map at its cap.
func TestReadCacheEvictionBound(t *testing.T) {
	c := newReadCache(4)
	for i := 0; i < 64; i++ {
		obj := rating.ObjectID(i)
		c.storeAggregate(obj, core.AggregateResult{Object: obj}, c.snapshotGen(obj))
	}
	c.mu.Lock()
	n := len(c.agg)
	c.mu.Unlock()
	if n > 4 {
		t.Fatalf("cache holds %d entries, cap 4", n)
	}
}

// TestReadCacheNilSafe: a disabled cache (nil pointer) must be inert.
func TestReadCacheNilSafe(t *testing.T) {
	var c *readCache
	if _, ok := c.aggregate(1, nil); ok {
		t.Fatal("nil cache hit")
	}
	c.storeAggregate(1, core.AggregateResult{}, c.snapshotGen(1))
	c.invalidateRatings([]rating.Rating{{Object: 1}})
	c.invalidateObjectList([]rating.ObjectID{1})
	c.invalidateAll()
	if _, ok := c.malicious(nil); ok {
		t.Fatal("nil cache malicious hit")
	}
	c.storeMalicious(nil, c.snapshotGlobalGen())
}
