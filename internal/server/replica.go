package server

// Read-replica serving: a follower daemon fronts the same Server as a
// primary, but marks it as a bounded-staleness replica. Reads carry an
// X-Replica-Lag header and are refused with a typed 503
// (replica_stale) once the replica falls past its staleness bound;
// mutations are refused with a typed 421 (not_primary) envelope that
// names the primary. At promotion the daemon clears the replica marker
// and installs a journal, and the same Server starts serving as a
// primary without restarting.

import (
	"fmt"
	"net/http"

	"repro/internal/api"
	"repro/internal/rating"
)

// ReplicaLagHeader reports a replica's staleness on every read
// response: "records=<behind> seconds=<age>".
const ReplicaLagHeader = "X-Replica-Lag"

// ReplicaInfo is a point-in-time view of a replica's staleness,
// sampled by the serving gate on every request.
type ReplicaInfo struct {
	// Primary is the primary's base URL, included in not_primary
	// envelopes so clients can redirect their writes.
	Primary string
	// Ready is false until the first successful bootstrap.
	Ready bool
	// LagRecords / LagSeconds are the current staleness.
	LagRecords uint64
	LagSeconds float64
	// MaxLagRecords / MaxLagSeconds bound how stale a read may be; a
	// zero bound is unenforced.
	MaxLagRecords uint64
	MaxLagSeconds float64
}

// WithReplica marks the server as a read replica; info is sampled per
// request (the follower's live lag). Passing it as a function — rather
// than importing the repl package — keeps server free of a dependency
// cycle and lets the daemon clear the marker at promotion.
func WithReplica(info func() ReplicaInfo) Option {
	return func(s *Server) { s.replica = info }
}

// SetReplica installs or clears (nil) the replica marker at runtime.
// Promotion calls SetReplica(nil) so the node starts accepting writes.
func (s *Server) SetReplica(info func() ReplicaInfo) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	s.replica = info
}

// SetJournal installs or replaces the journal at runtime. Promotion
// uses it to hand the server the promoted WAL journal.
func (s *Server) SetJournal(j Journal) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	s.journal = j
}

func (s *Server) getJournal() Journal {
	s.jmu.RLock()
	defer s.jmu.RUnlock()
	return s.journal
}

func (s *Server) getReplica() func() ReplicaInfo {
	s.jmu.RLock()
	defer s.jmu.RUnlock()
	return s.replica
}

// InvalidateRatings drops cached reads the given replicated ratings
// touch; the follower's apply hook calls it so replica reads never
// serve pre-apply cached state.
func (s *Server) InvalidateRatings(rs []rating.Rating) { s.cache.invalidateRatings(rs) }

// InvalidateAll drops the whole read cache; the follower's window and
// bootstrap hooks call it (a window rewrites trust, which feeds every
// cached read).
func (s *Server) InvalidateAll() { s.cache.invalidateAll() }

// replicaGate enforces the replica serving contract around next. With
// no replica marker installed it is a passthrough.
func (s *Server) replicaGate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		info := s.getReplica()
		if info == nil || r.URL.Path == "/healthz" {
			next.ServeHTTP(w, r)
			return
		}
		rep := info()
		// Alerts reflect the primary's live detection state — a replica
		// has no streaming engine — so the read is misdirected, not
		// merely stale.
		if r.Method != http.MethodGet || r.URL.Path == alertsPath {
			writeEnvelope(w, r, http.StatusMisdirectedRequest,
				api.NewError(api.CodeNotPrimary,
					"this node is a read replica; send writes to the primary").
					WithPrimary(rep.Primary))
			return
		}
		w.Header().Set(ReplicaLagHeader,
			fmt.Sprintf("records=%d seconds=%.3f", rep.LagRecords, rep.LagSeconds))
		if !rep.Ready {
			writeEnvelope(w, r, http.StatusServiceUnavailable,
				api.NewError(api.CodeReplicaStale,
					"replica is bootstrapping and not yet serving reads").
					WithRetryAfter(1))
			return
		}
		if (rep.MaxLagRecords > 0 && rep.LagRecords > rep.MaxLagRecords) ||
			(rep.MaxLagSeconds > 0 && rep.LagSeconds > rep.MaxLagSeconds) {
			writeEnvelope(w, r, http.StatusServiceUnavailable,
				api.NewError(api.CodeReplicaStale,
					"replica lag %d records / %.3fs exceeds bound %d records / %gs",
					rep.LagRecords, rep.LagSeconds, rep.MaxLagRecords, rep.MaxLagSeconds).
					WithRetryAfter(1))
			return
		}
		next.ServeHTTP(w, r)
	})
}
