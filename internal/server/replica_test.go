package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/rating"
)

func decodeBody(res *http.Response, out any) error {
	defer res.Body.Close()
	return json.NewDecoder(res.Body).Decode(out)
}

func replicaPair(t *testing.T) (primary, replica *httptest.Server, replicaSrv *Server, info *ReplicaInfo) {
	t.Helper()
	cfg := core.Config{Detector: detector.Config{Threshold: 0.05}}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	contractSeed(t, p.System())

	ri := &ReplicaInfo{Primary: "http://primary.example", Ready: true, MaxLagRecords: 100}
	r, err := New(cfg, WithReplica(func() ReplicaInfo { return *ri }))
	if err != nil {
		t.Fatal(err)
	}
	contractSeed(t, r.System()) // identical state, as a converged follower would hold

	tsP := httptest.NewServer(p)
	tsR := httptest.NewServer(r)
	t.Cleanup(tsP.Close)
	t.Cleanup(tsR.Close)
	return tsP, tsR, r, ri
}

// A fresh replica serves read bodies byte-identical to the primary's,
// with the lag header as the only addition.
func TestReplicaFreshReadsByteIdentical(t *testing.T) {
	tsP, tsR, _, _ := replicaPair(t)
	// Every typed read endpoint; /v1/snapshot is excluded because its
	// record order is map-iteration order even on a single node.
	for _, path := range []string{
		"/v1/objects/1/aggregate",
		"/v1/objects/2/aggregate",
		"/v1/raters/3/trust",
		"/v1/malicious",
		"/v1/malicious?offset=0&limit=5",
		"/v1/stats",
		"/v1/stats?bounds=0.25,0.5,1",
	} {
		resP, err := tsP.Client().Get(tsP.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resR, err := tsR.Client().Get(tsR.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		bodyP, _ := io.ReadAll(resP.Body)
		bodyR, _ := io.ReadAll(resR.Body)
		resP.Body.Close()
		resR.Body.Close()
		if resP.StatusCode != resR.StatusCode {
			t.Fatalf("%s: status %d on primary, %d on replica", path, resP.StatusCode, resR.StatusCode)
		}
		if string(bodyP) != string(bodyR) {
			t.Fatalf("%s: replica body differs from primary\n--- primary\n%s--- replica\n%s", path, bodyP, bodyR)
		}
		if lag := resR.Header.Get(ReplicaLagHeader); lag != "records=0 seconds=0.000" {
			t.Fatalf("%s: replica lag header %q", path, lag)
		}
		if lag := resP.Header.Get(ReplicaLagHeader); lag != "" {
			t.Fatalf("%s: primary unexpectedly sent a lag header %q", path, lag)
		}
	}
}

// Past the staleness bound, every read becomes a typed 503; mutations
// are always a typed 421 naming the primary; /healthz stays exempt so
// orchestrators can still probe liveness.
func TestReplicaGateRefusals(t *testing.T) {
	_, tsR, _, ri := replicaPair(t)

	ri.LagRecords = 101 // one past MaxLagRecords
	res, err := tsR.Client().Get(tsR.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var env api.Error
	if err := decodeBody(res, &env); err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusServiceUnavailable || env.Code != api.CodeReplicaStale {
		t.Fatalf("stale read: status %d code %q", res.StatusCode, env.Code)
	}
	if res.Header.Get(ReplicaLagHeader) == "" {
		t.Fatal("stale 503 dropped the lag header")
	}

	res, err = tsR.Client().Post(tsR.URL+"/v1/process", "application/json", strings.NewReader(`{"start":0,"end":30}`))
	if err != nil {
		t.Fatal(err)
	}
	env = api.Error{}
	if err := decodeBody(res, &env); err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusMisdirectedRequest || env.Code != api.CodeNotPrimary {
		t.Fatalf("replica write: status %d code %q", res.StatusCode, env.Code)
	}
	if env.Primary != "http://primary.example" {
		t.Fatalf("not_primary envelope names %q", env.Primary)
	}

	res, err = tsR.Client().Get(tsR.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthz on a stale replica: %d", res.StatusCode)
	}

	// Not yet bootstrapped: reads refuse even with zero recorded lag.
	ri.LagRecords, ri.Ready = 0, false
	res, err = tsR.Client().Get(tsR.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	env = api.Error{}
	if err := decodeBody(res, &env); err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusServiceUnavailable || env.Code != api.CodeReplicaStale {
		t.Fatalf("unbootstrapped read: status %d code %q", res.StatusCode, env.Code)
	}
}

// promotedJournal records that mutations flow through the journal
// installed at promotion.
type promotedJournal struct {
	sys     Backend
	submits int
}

func (j *promotedJournal) SubmitAll(rs []rating.Rating) error {
	j.submits++
	return j.sys.SubmitAll(rs)
}
func (j *promotedJournal) ProcessWindow(start, end float64) (core.ProcessReport, error) {
	return j.sys.ProcessWindow(start, end)
}
func (j *promotedJournal) Restore(io.Reader) error { return errors.New("not supported") }

// SetReplica(nil) + SetJournal flip a serving replica into a primary
// in place: the very next request writes through the new journal.
func TestReplicaPromotionFlip(t *testing.T) {
	_, tsR, srvR, _ := replicaPair(t)

	body := `[{"rater":900,"object":1,"value":0.5,"time":60}]`
	res, err := tsR.Client().Post(tsR.URL+"/v1/ratings", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("pre-promotion write: %d", res.StatusCode)
	}

	j := &promotedJournal{sys: srvR.System()}
	srvR.SetReplica(nil)
	srvR.SetJournal(j)

	res, err = tsR.Client().Post(tsR.URL+"/v1/ratings", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub api.SubmitResponse
	if err := decodeBody(res, &sub); err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK || sub.Accepted != 1 {
		t.Fatalf("post-promotion write: status %d accepted %d", res.StatusCode, sub.Accepted)
	}
	if j.submits != 1 {
		t.Fatalf("promoted journal saw %d submits, want 1", j.submits)
	}
	if res.Header.Get(ReplicaLagHeader) != "" {
		t.Fatal("promoted node still advertises replica lag")
	}
}
