package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/rating"
)

// flakyProxy forwards requests to the real server but, for the first
// failures of each request, executes the request and then DISCARDS the
// response, answering 503 instead. This models the nastiest retry
// hazard: the mutation was applied but the acknowledgement was lost.
type flakyProxy struct {
	inner    http.Handler
	failures int32
}

func (p *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if atomic.AddInt32(&p.failures, -1) >= 0 {
		rec := httptest.NewRecorder()
		p.inner.ServeHTTP(rec, r) // applied...
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable) // ...but the ack is lost
		fmt.Fprint(w, `{"error":"injected ack loss"}`)
		return
	}
	p.inner.ServeHTTP(w, r)
}

// A retried submit whose first acknowledgement was lost must be
// ingested exactly once: the request ID reused across attempts makes
// the server replay the recorded response instead of re-applying the
// batch.
func TestRetrySubmitExactlyOnce(t *testing.T) {
	srv, err := New(core.Config{Detector: detector.Config{Threshold: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	proxy := &flakyProxy{inner: srv, failures: 2}
	ts := httptest.NewServer(proxy)
	defer ts.Close()

	client := NewClient(ts.URL, ts.Client(), WithRetry(RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Seed:        42,
	}))
	batch := []RatingPayload{
		{Rater: 1, Object: 9, Value: 0.5, Time: 1},
		{Rater: 2, Object: 9, Value: 0.6, Time: 2},
		{Rater: 3, Object: 9, Value: 0.7, Time: 3},
	}
	accepted, err := client.Submit(context.Background(), batch)
	if err != nil {
		t.Fatalf("submit with retries: %v", err)
	}
	if accepted != 3 {
		t.Fatalf("accepted = %d", accepted)
	}
	if got := srv.System().Len(); got != 3 {
		t.Fatalf("system holds %d ratings, want exactly 3 (no double ingestion)", got)
	}
}

// Without retries the same lost ack is a client-visible 503 — the
// retry policy is what turns it into success.
func TestNoRetryPolicySurfacesServerError(t *testing.T) {
	srv, err := New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	proxy := &flakyProxy{inner: srv, failures: 1}
	ts := httptest.NewServer(proxy)
	defer ts.Close()

	client := NewClient(ts.URL, ts.Client())
	_, err = client.Submit(context.Background(), []RatingPayload{{Rater: 1, Object: 1, Value: 0.5, Time: 1}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 APIError", err)
	}
}

// Retries must never fire on 4xx: the request is wrong, not the
// transport.
func TestNoRetryOn4xx(t *testing.T) {
	var hits int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		atomic.AddInt32(&hits, 1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"nope"}`)
	}))
	defer ts.Close()

	client := NewClient(ts.URL, ts.Client(), WithRetry(RetryPolicy{
		MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 1,
	}))
	_, err := client.Submit(context.Background(), []RatingPayload{{Rater: 1, Object: 1, Value: 0.5, Time: 1}})
	if err == nil {
		t.Fatal("400 did not surface as error")
	}
	if n := atomic.LoadInt32(&hits); n != 1 {
		t.Fatalf("4xx was retried: %d attempts", n)
	}
}

// A cancelled context stops the retry loop promptly.
func TestRetryHonorsContextCancellation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	client := NewClient(ts.URL, ts.Client(), WithRetry(RetryPolicy{
		MaxAttempts: 100, BaseDelay: time.Hour, Seed: 1,
	}))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := client.Submit(ctx, []RatingPayload{{Rater: 1, Object: 1, Value: 0.5, Time: 1}})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("retry loop ignored cancellation")
	}
}

// Retry schedules must DIVERGE across clients built from the same
// policy: a fleet of followers sharing one config seed must not
// stampede a recovering primary in lockstep, and must not draw
// colliding request IDs (which the idempotency cache would wrongly
// deduplicate across clients). Each client mixes a process-wide
// instance counter into the seed, so identical policies yield
// distinct jitter and ID streams.
func TestRetryDivergenceUnderFixedSeed(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Second, Seed: 7}
	a := NewClient("http://unused", nil, WithRetry(p))
	b := NewClient("http://unused", nil, WithRetry(p))

	idCollisions, delayCollisions := 0, 0
	for i := 0; i < 16; i++ {
		if a.nextRequestID() == b.nextRequestID() {
			idCollisions++
		}
		// Same retryN on both sides: the worst case for lockstep.
		n := i%2 + 1
		if a.backoff(n) == b.backoff(n) {
			delayCollisions++
		}
	}
	if idCollisions > 0 {
		t.Fatalf("%d request-ID collisions between same-seed clients", idCollisions)
	}
	if delayCollisions > 4 {
		t.Fatalf("%d/16 identical backoff draws between same-seed clients: schedules are synchronized", delayCollisions)
	}

	// The schedule stays decorrelated but bounded: every draw within
	// [BaseDelay, MaxDelay], growth from one draw never exceeds 3x.
	c := NewClient("http://unused", nil, WithRetry(p))
	prev := time.Duration(0)
	for n := 1; n <= 10; n++ {
		d := c.backoff(n)
		if d < p.BaseDelay || d > p.MaxDelay {
			t.Fatalf("draw %d: backoff %v outside [%v, %v]", n, d, p.BaseDelay, p.MaxDelay)
		}
		if prev > 0 && d > 3*prev {
			t.Fatalf("draw %d: backoff %v > 3x previous %v", n, d, prev)
		}
		prev = d
	}
}

// Replaying the same request ID directly against the server must not
// re-execute the handler, and the replayed response is marked.
func TestDedupeReplay(t *testing.T) {
	srv, ts, _ := newTestServer(t)
	body := `[{"rater":1,"object":5,"value":0.4,"time":1}]`

	post := func() *http.Response {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/ratings", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-ID", "dedupe-test-1")
		res, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	res1 := post()
	io.Copy(io.Discard, res1.Body)
	res1.Body.Close()
	if res1.StatusCode != http.StatusOK {
		t.Fatalf("first attempt: %d", res1.StatusCode)
	}
	if res1.Header.Get("X-Request-Replayed") != "" {
		t.Fatal("first attempt marked as replay")
	}

	res2 := post()
	b, _ := io.ReadAll(res2.Body)
	res2.Body.Close()
	if res2.StatusCode != http.StatusOK {
		t.Fatalf("replay: %d", res2.StatusCode)
	}
	if res2.Header.Get("X-Request-Replayed") != "true" {
		t.Fatal("replay not marked")
	}
	var resp SubmitResponse
	if err := json.Unmarshal(b, &resp); err != nil || resp.Accepted != 1 {
		t.Fatalf("replayed body = %q (%v)", b, err)
	}
	if got := srv.System().Len(); got != 1 {
		t.Fatalf("system holds %d ratings after replay, want 1", got)
	}
}

// Failed (5xx) responses are not cached, so a retry after a journal
// outage re-executes instead of replaying the failure forever.
func TestDedupeDoesNotCacheFailures(t *testing.T) {
	j := &scriptedJournal{failFirst: 1}
	srv, err := New(core.Config{}, WithJournal(j))
	if err != nil {
		t.Fatal(err)
	}
	j.sys = srv.System()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	client := NewClient(ts.URL, ts.Client(), WithRetry(RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 3,
	}))
	accepted, err := client.Submit(context.Background(), []RatingPayload{{Rater: 1, Object: 1, Value: 0.5, Time: 1}})
	if err != nil || accepted != 1 {
		t.Fatalf("submit after journal recovery: accepted=%d err=%v", accepted, err)
	}
	if got := srv.System().Len(); got != 1 {
		t.Fatalf("system holds %d ratings, want 1", got)
	}
}

// scriptedJournal fails its first failFirst SubmitAll calls, then
// applies to the wrapped system; it can also panic on demand.
type scriptedJournal struct {
	mu        sync.Mutex
	failFirst int
	panicNext bool
	delay     time.Duration
	sys       Backend
}

func (j *scriptedJournal) SubmitAll(rs []rating.Rating) error {
	j.mu.Lock()
	fail := j.failFirst > 0
	if fail {
		j.failFirst--
	}
	doPanic := j.panicNext
	delay := j.delay
	j.mu.Unlock()
	if doPanic {
		panic("journal wiring bug")
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return errors.New("journal disk unavailable")
	}
	return j.sys.SubmitAll(rs)
}

func (j *scriptedJournal) ProcessWindow(start, end float64) (core.ProcessReport, error) {
	return j.sys.ProcessWindow(start, end)
}

func (j *scriptedJournal) Restore(r io.Reader) error { return j.sys.LoadSnapshot(r) }

// A panicking handler must 500 the one request and leave the daemon
// serving.
func TestPanicRecoveryKeepsServing(t *testing.T) {
	j := &scriptedJournal{panicNext: true}
	srv, err := New(core.Config{}, WithJournal(j))
	if err != nil {
		t.Fatal(err)
	}
	j.sys = srv.System()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())

	_, err = client.Submit(context.Background(), []RatingPayload{{Rater: 1, Object: 1, Value: 0.5, Time: 1}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("panic surfaced as %v, want 500 APIError", err)
	}
	if !client.Healthy(context.Background()) {
		t.Fatal("server died after handler panic")
	}
	j.mu.Lock()
	j.panicNext = false
	j.mu.Unlock()
	if _, err := client.Submit(context.Background(), []RatingPayload{{Rater: 1, Object: 1, Value: 0.5, Time: 1}}); err != nil {
		t.Fatalf("submit after recovered panic: %v", err)
	}
}

// Oversized bodies are rejected with 413 before reaching a handler's
// decoder loop.
func TestBodyLimit(t *testing.T) {
	srv, err := New(core.Config{}, WithMaxBodyBytes(256))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var batch []RatingPayload
	for i := 0; i < 100; i++ {
		batch = append(batch, RatingPayload{Rater: i, Object: 1, Value: 0.5, Time: float64(i)})
	}
	payload, _ := json.Marshal(batch)
	res, err := ts.Client().Post(ts.URL+"/v1/ratings", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", res.StatusCode)
	}
	if got := srv.System().Len(); got != 0 {
		t.Fatalf("oversized batch partially ingested: %d", got)
	}
}

// A handler that exceeds the per-request timeout is cut off with 503
// while the server keeps serving.
func TestRequestTimeout(t *testing.T) {
	j := &scriptedJournal{delay: 500 * time.Millisecond}
	srv, err := New(core.Config{}, WithJournal(j), WithRequestTimeout(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	j.sys = srv.System()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	payload := `[{"rater":1,"object":1,"value":0.5,"time":1}]`
	res, err := ts.Client().Post(ts.URL+"/v1/ratings", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 from timeout handler", res.StatusCode)
	}
	if !NewClient(ts.URL, ts.Client()).Healthy(context.Background()) {
		t.Fatal("server unhealthy after timed-out request")
	}
}

// Snapshot round trip under concurrent traffic: while writers push
// unique ratings and maintenance windows run, snapshots taken at any
// moment must restore to a consistent state — every rating present at
// most once, and the final snapshot holds all of them exactly once.
func TestSnapshotRoundTripUnderConcurrentTraffic(t *testing.T) {
	srv, _, client := newTestServer(t)
	ctx := context.Background()

	const writers = 4
	const perWriter = 50
	var writerWG sync.WaitGroup
	errs := make(chan error, writers+2)

	for wtr := 0; wtr < writers; wtr++ {
		writerWG.Add(1)
		go func(wtr int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				// Unique (rater, time) per rating so duplicates are
				// detectable in the restored state.
				r := RatingPayload{
					Rater:  wtr*perWriter + i,
					Object: 1 + wtr%2,
					Value:  0.5,
					Time:   float64(wtr*perWriter + i),
				}
				if _, err := client.Submit(ctx, []RatingPayload{r}); err != nil {
					errs <- err
					return
				}
			}
		}(wtr)
	}
	// Concurrent maintenance and snapshot reader; stops once writers
	// are done.
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := client.Snapshot(ctx, &buf); err != nil {
				errs <- fmt.Errorf("snapshot during traffic: %w", err)
				return
			}
			if err := checkNoDuplicates(buf.Bytes(), writers*perWriter); err != nil {
				errs <- err
				return
			}
			if _, err := client.Process(ctx, 0, 10); err != nil {
				errs <- fmt.Errorf("process during traffic: %w", err)
				return
			}
		}
	}()

	writerWG.Wait()
	close(stop)
	<-readerDone
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if got := srv.System().Len(); got != writers*perWriter {
		t.Fatalf("system holds %d ratings, want %d", got, writers*perWriter)
	}

	// Final snapshot restores into a fresh server with nothing lost or
	// duplicated.
	var final bytes.Buffer
	if err := client.Snapshot(ctx, &final); err != nil {
		t.Fatal(err)
	}
	srv2, _, client2 := newTestServer(t)
	if err := client2.Restore(ctx, bytes.NewReader(final.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := srv2.System().Len(); got != writers*perWriter {
		t.Fatalf("restored system holds %d ratings, want %d", got, writers*perWriter)
	}
	seen := ratingKeys(t, final.Bytes())
	if len(seen) != writers*perWriter {
		t.Fatalf("final snapshot has %d unique ratings, want %d", len(seen), writers*perWriter)
	}
}

// checkNoDuplicates parses a snapshot and verifies each unique rating
// key appears once and the total never exceeds max.
func checkNoDuplicates(snap []byte, max int) error {
	keys := map[string]int{}
	var doc struct {
		Ratings []struct {
			Rater  int     `json:"rater"`
			Object int     `json:"object"`
			Time   float64 `json:"time"`
		} `json:"ratings"`
	}
	if err := json.Unmarshal(snap, &doc); err != nil {
		return fmt.Errorf("snapshot parse: %w", err)
	}
	if len(doc.Ratings) > max {
		return fmt.Errorf("snapshot has %d ratings, max %d submitted", len(doc.Ratings), max)
	}
	for _, r := range doc.Ratings {
		k := fmt.Sprintf("%d/%d/%g", r.Rater, r.Object, r.Time)
		if keys[k]++; keys[k] > 1 {
			return fmt.Errorf("duplicate rating %s in mid-traffic snapshot", k)
		}
	}
	return nil
}

func ratingKeys(t *testing.T, snap []byte) map[string]bool {
	t.Helper()
	var doc struct {
		Ratings []struct {
			Rater  int     `json:"rater"`
			Object int     `json:"object"`
			Time   float64 `json:"time"`
		} `json:"ratings"`
	}
	if err := json.Unmarshal(snap, &doc); err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, r := range doc.Ratings {
		out[fmt.Sprintf("%d/%d/%g", r.Rater, r.Object, r.Time)] = true
	}
	return out
}
