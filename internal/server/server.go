// Package server exposes the trust-enhanced rating system as a small
// JSON-over-HTTP service — the deployment shape a marketplace backend
// would actually consume. It wraps a core.SafeSystem, so handlers are
// safe under concurrent requests.
//
// Endpoints (v1):
//
//	POST /v1/ratings              submit one rating or an array of them
//	POST /v1/process              run a maintenance window {start,end}
//	GET  /v1/objects/{id}/aggregate   trust-weighted aggregate
//	GET  /v1/raters/{id}/trust        rater trust value
//	GET  /v1/malicious                raters below the trust threshold
//	GET  /v1/snapshot                 download the full state
//	PUT  /v1/snapshot                 replace the full state
//	GET  /healthz                     liveness
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/rating"
	"repro/internal/telemetry"
	"repro/internal/trust"
)

// Backend is the state engine a Server fronts: the single-lock
// core.SafeSystem or the sharded shard.Engine. Handlers only need
// this surface, so the wire format and routes are identical for both
// deployment shapes.
type Backend interface {
	Submit(r rating.Rating) error
	SubmitAll(rs []rating.Rating) error
	Len() int
	ProcessWindow(start, end float64) (core.ProcessReport, error)
	Aggregate(obj rating.ObjectID) (core.AggregateResult, error)
	TrustIn(id rating.RaterID) float64
	TrustSnapshot() map[rating.RaterID]float64
	TrustDistribution(bounds []float64) []int
	RaterCount() int
	MaliciousRaters() []rating.RaterID
	WriteSnapshot(w io.Writer) error
	LoadSnapshot(r io.Reader) error
}

// Journal orders durable logging against in-memory application: a
// daemon that write-ahead-logs mutations implements it so that "append
// to the log" and "apply to the system" happen atomically with respect
// to snapshots (see cmd/ratingd). When a Journal is installed, the
// mutating endpoints route through it instead of touching the
// SafeSystem directly.
type Journal interface {
	// SubmitAll logs and applies a batch of pre-validated ratings.
	SubmitAll(rs []rating.Rating) error
	// ProcessWindow logs and runs one maintenance window.
	ProcessWindow(start, end float64) (core.ProcessReport, error)
	// Restore replaces the state with a snapshot and rebases the log.
	Restore(r io.Reader) error
}

// Server is the HTTP facade over one rating system.
type Server struct {
	sys     Backend
	mux     *http.ServeMux
	handler http.Handler

	journal    Journal
	dedupe     *dedupeCache
	maxBody    int64
	reqTimeout time.Duration
	metrics    *serverMetrics
}

// Option customizes a Server.
type Option func(*Server)

// WithJournal routes mutations through j (write-ahead logging).
func WithJournal(j Journal) Option { return func(s *Server) { s.journal = j } }

// WithTelemetry registers the server's HTTP metrics (per-endpoint
// request counts, latencies, status codes, idempotency-cache hits) on
// reg and enables per-request instrumentation. A nil registry leaves
// the server uninstrumented.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(s *Server) { s.metrics = newServerMetrics(reg) }
}

// WithMaxBodyBytes caps request bodies; n <= 0 keeps the default
// (8 MiB).
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// WithRequestTimeout bounds each request's handling time; 0 disables
// the per-request timeout.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.reqTimeout = d }
}

// WithDedupeCapacity sizes the idempotency cache (default 1024
// request IDs).
func WithDedupeCapacity(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.dedupe = newDedupeCache(n)
		}
	}
}

// New builds a Server around cfg with a core.SafeSystem backend.
func New(cfg core.Config, opts ...Option) (*Server, error) {
	sys, err := core.NewSafeSystem(cfg)
	if err != nil {
		return nil, err
	}
	return NewWith(sys, opts...)
}

// NewWith builds a Server around an existing backend — the way a
// sharded deployment fronts a shard.Engine.
func NewWith(backend Backend, opts ...Option) (*Server, error) {
	if backend == nil {
		return nil, errors.New("server: nil backend")
	}
	s := &Server{
		sys:     backend,
		mux:     http.NewServeMux(),
		dedupe:  newDedupeCache(1024),
		maxBody: 8 << 20,
	}
	for _, opt := range opts {
		opt(s)
	}
	s.routes()

	// Middleware, outermost first: panic containment (a handler bug
	// 500s one request instead of killing the daemon), body limits,
	// then the per-request timeout.
	h := http.Handler(s.mux)
	if s.reqTimeout > 0 {
		h = http.TimeoutHandler(h, s.reqTimeout, `{"error":"request timed out"}`)
	}
	limit := s.maxBody
	inner := h
	h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, limit)
		}
		inner.ServeHTTP(w, r)
	})
	s.handler = recoverPanics(h)
	return s, nil
}

// recoverPanics converts a handler panic into a 500 for that request,
// keeping the daemon alive.
func recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				if v == http.ErrAbortHandler { //nolint:errorlint // sentinel by identity
					panic(v)
				}
				writeError(w, http.StatusInternalServerError,
					fmt.Errorf("internal panic: %v", v))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// System exposes the underlying backend (for preloading state in
// tools and tests).
func (s *Server) System() Backend { return s.sys }

var _ http.Handler = (*Server)(nil)

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

func (s *Server) routes() {
	// Each route is wrapped with its own telemetry label; observe is
	// the identity when no registry is installed.
	s.mux.HandleFunc("POST /v1/ratings", s.observe("/v1/ratings", s.idempotent(s.handleSubmit)))
	s.mux.HandleFunc("POST /v1/process", s.observe("/v1/process", s.idempotent(s.handleProcess)))
	s.mux.HandleFunc("GET /v1/objects/{id}/aggregate", s.observe("/v1/objects/{id}/aggregate", s.handleAggregate))
	s.mux.HandleFunc("GET /v1/raters/{id}/trust", s.observe("/v1/raters/{id}/trust", s.handleTrust))
	s.mux.HandleFunc("GET /v1/malicious", s.observe("/v1/malicious", s.handleMalicious))
	s.mux.HandleFunc("GET /v1/stats", s.observe("/v1/stats", s.handleStats))
	s.mux.HandleFunc("GET /v1/snapshot", s.observe("/v1/snapshot", s.handleSnapshotGet))
	s.mux.HandleFunc("PUT /v1/snapshot", s.observe("/v1/snapshot", s.handleSnapshotPut))
	s.mux.HandleFunc("GET /healthz", s.observe("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))
}

// RatingPayload is the wire form of one rating.
type RatingPayload struct {
	Rater  int     `json:"rater"`
	Object int     `json:"object"`
	Value  float64 `json:"value"`
	Time   float64 `json:"time"`
}

func (p RatingPayload) toRating() rating.Rating {
	return rating.Rating{
		Rater:  rating.RaterID(p.Rater),
		Object: rating.ObjectID(p.Object),
		Value:  p.Value,
		Time:   p.Time,
	}
}

// SubmitResponse reports how many ratings were accepted.
type SubmitResponse struct {
	Accepted int `json:"accepted"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The body is a JSON array of ratings; a single rating is a
	// one-element array.
	var batch []RatingPayload
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&batch); err != nil {
		writeError(w, bodyErrStatus(err), fmt.Errorf("decode ratings: %w", err))
		return
	}
	// Validate up front so acceptance is all-or-nothing: nothing is
	// journaled or applied unless the whole batch is well-formed.
	rs := make([]rating.Rating, len(batch))
	for i, p := range batch {
		rs[i] = p.toRating()
		if err := rs[i].Validate(); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("rating %d: %w", i, err))
			return
		}
	}
	if s.journal != nil {
		if err := s.journal.SubmitAll(rs); err != nil {
			// Durability is unavailable; refuse the write so the
			// client retries rather than accepting state a crash
			// would silently lose.
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("journal: %w", err))
			return
		}
	} else if err := s.sys.SubmitAll(rs); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, SubmitResponse{Accepted: len(rs)})
}

// ProcessRequest is the maintenance-window request body.
type ProcessRequest struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// ProcessResponse summarizes one maintenance pass. Degraded counts
// objects whose detector pass failed and fell back to filter-only
// evidence.
type ProcessResponse struct {
	Objects      int `json:"objects"`
	Observations int `json:"observations"`
	Suspicious   int `json:"suspiciousWindows"`
	Degraded     int `json:"degradedObjects"`
}

func (s *Server) handleProcess(w http.ResponseWriter, r *http.Request) {
	var req ProcessRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, bodyErrStatus(err), fmt.Errorf("decode process request: %w", err))
		return
	}
	if req.End <= req.Start {
		// Reject before journaling so the WAL only sees windows that
		// will replay successfully.
		writeError(w, http.StatusBadRequest, fmt.Errorf("process window [%g,%g)", req.Start, req.End))
		return
	}
	var rep core.ProcessReport
	var err error
	if s.journal != nil {
		rep, err = s.journal.ProcessWindow(req.Start, req.End)
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("journal: %w", err))
			return
		}
	} else if rep, err = s.sys.ProcessWindow(req.Start, req.End); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := ProcessResponse{
		Objects:      len(rep.Objects),
		Observations: len(rep.Observations),
		Degraded:     len(rep.DegradedObjects()),
	}
	for _, obj := range rep.Objects {
		resp.Suspicious += len(obj.Detection.SuspiciousWindows())
	}
	writeJSON(w, http.StatusOK, resp)
}

// AggregateResponse is the wire form of an aggregate.
type AggregateResponse struct {
	Object   int     `json:"object"`
	Value    float64 `json:"value"`
	Used     int     `json:"used"`
	Filtered int     `json:"filtered"`
	FellBack bool    `json:"fellBack"`
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("object id: %w", err))
		return
	}
	agg, err := s.sys.Aggregate(rating.ObjectID(id))
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, rating.ErrUnknownObject):
			status = http.StatusNotFound
		case errors.Is(err, trust.ErrNoTrustedRaters), errors.Is(err, trust.ErrNoRatings):
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, AggregateResponse{
		Object:   int(agg.Object),
		Value:    agg.Value,
		Used:     agg.Used,
		Filtered: agg.Filtered,
		FellBack: agg.FellBack,
	})
}

// TrustResponse is the wire form of a rater's trust.
type TrustResponse struct {
	Rater int     `json:"rater"`
	Trust float64 `json:"trust"`
}

func (s *Server) handleTrust(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("rater id: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, TrustResponse{
		Rater: id,
		Trust: s.sys.TrustIn(rating.RaterID(id)),
	})
}

// MaliciousResponse lists flagged raters.
type MaliciousResponse struct {
	Raters []int `json:"raters"`
}

func (s *Server) handleMalicious(w http.ResponseWriter, _ *http.Request) {
	ids := s.sys.MaliciousRaters()
	resp := MaliciousResponse{Raters: make([]int, 0, len(ids))}
	for _, id := range ids {
		resp.Raters = append(resp.Raters, int(id))
	}
	writeJSON(w, http.StatusOK, resp)
}

// StatsResponse summarizes the system's state.
type StatsResponse struct {
	Ratings   int `json:"ratings"`
	Raters    int `json:"raters"`
	Malicious int `json:"malicious"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Ratings:   s.sys.Len(),
		Raters:    len(s.sys.TrustSnapshot()),
		Malicious: len(s.sys.MaliciousRaters()),
	})
}

func (s *Server) handleSnapshotGet(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.sys.WriteSnapshot(w); err != nil {
		// Headers are already out; nothing better to do than log-level
		// truncation, which the client sees as a broken body.
		return
	}
}

func (s *Server) handleSnapshotPut(w http.ResponseWriter, r *http.Request) {
	restore := s.sys.LoadSnapshot
	if s.journal != nil {
		restore = s.journal.Restore
	}
	if err := restore(r.Body); err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ErrorResponse is the wire form of every error.
type ErrorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// bodyErrStatus distinguishes an over-limit body (413) from ordinary
// malformed input (400).
func bodyErrStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}
