// Package server exposes the trust-enhanced rating system as a small
// JSON-over-HTTP service — the deployment shape a marketplace backend
// would actually consume. It wraps a core.SafeSystem, so handlers are
// safe under concurrent requests.
//
// Endpoints (v1):
//
//	POST /v1/ratings              submit one rating or an array of them
//	POST /v1/process              run a maintenance window {start,end}
//	GET  /v1/objects/{id}/aggregate   trust-weighted aggregate
//	GET  /v1/raters/{id}/trust        rater trust value
//	GET  /v1/malicious                raters below the trust threshold
//	GET  /v1/snapshot                 download the full state
//	PUT  /v1/snapshot                 replace the full state
//	GET  /healthz                     liveness
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/rating"
	"repro/internal/trust"
)

// Server is the HTTP facade over one rating system.
type Server struct {
	sys *core.SafeSystem
	mux *http.ServeMux
}

// New builds a Server around cfg.
func New(cfg core.Config) (*Server, error) {
	sys, err := core.NewSafeSystem(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{sys: sys, mux: http.NewServeMux()}
	s.routes()
	return s, nil
}

// System exposes the underlying system (for preloading state in tools
// and tests).
func (s *Server) System() *core.SafeSystem { return s.sys }

var _ http.Handler = (*Server)(nil)

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/ratings", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/process", s.handleProcess)
	s.mux.HandleFunc("GET /v1/objects/{id}/aggregate", s.handleAggregate)
	s.mux.HandleFunc("GET /v1/raters/{id}/trust", s.handleTrust)
	s.mux.HandleFunc("GET /v1/malicious", s.handleMalicious)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/snapshot", s.handleSnapshotGet)
	s.mux.HandleFunc("PUT /v1/snapshot", s.handleSnapshotPut)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
}

// RatingPayload is the wire form of one rating.
type RatingPayload struct {
	Rater  int     `json:"rater"`
	Object int     `json:"object"`
	Value  float64 `json:"value"`
	Time   float64 `json:"time"`
}

func (p RatingPayload) toRating() rating.Rating {
	return rating.Rating{
		Rater:  rating.RaterID(p.Rater),
		Object: rating.ObjectID(p.Object),
		Value:  p.Value,
		Time:   p.Time,
	}
}

// SubmitResponse reports how many ratings were accepted.
type SubmitResponse struct {
	Accepted int `json:"accepted"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The body is a JSON array of ratings; a single rating is a
	// one-element array.
	var batch []RatingPayload
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&batch); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode ratings: %w", err))
		return
	}
	accepted := 0
	for i, p := range batch {
		if err := s.sys.Submit(p.toRating()); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("rating %d: %w", i, err))
			return
		}
		accepted++
	}
	writeJSON(w, http.StatusOK, SubmitResponse{Accepted: accepted})
}

// ProcessRequest is the maintenance-window request body.
type ProcessRequest struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// ProcessResponse summarizes one maintenance pass.
type ProcessResponse struct {
	Objects      int `json:"objects"`
	Observations int `json:"observations"`
	Suspicious   int `json:"suspiciousWindows"`
}

func (s *Server) handleProcess(w http.ResponseWriter, r *http.Request) {
	var req ProcessRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode process request: %w", err))
		return
	}
	rep, err := s.sys.ProcessWindow(req.Start, req.End)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := ProcessResponse{
		Objects:      len(rep.Objects),
		Observations: len(rep.Observations),
	}
	for _, obj := range rep.Objects {
		resp.Suspicious += len(obj.Detection.SuspiciousWindows())
	}
	writeJSON(w, http.StatusOK, resp)
}

// AggregateResponse is the wire form of an aggregate.
type AggregateResponse struct {
	Object   int     `json:"object"`
	Value    float64 `json:"value"`
	Used     int     `json:"used"`
	Filtered int     `json:"filtered"`
	FellBack bool    `json:"fellBack"`
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("object id: %w", err))
		return
	}
	agg, err := s.sys.Aggregate(rating.ObjectID(id))
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, rating.ErrUnknownObject):
			status = http.StatusNotFound
		case errors.Is(err, trust.ErrNoTrustedRaters), errors.Is(err, trust.ErrNoRatings):
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, AggregateResponse{
		Object:   int(agg.Object),
		Value:    agg.Value,
		Used:     agg.Used,
		Filtered: agg.Filtered,
		FellBack: agg.FellBack,
	})
}

// TrustResponse is the wire form of a rater's trust.
type TrustResponse struct {
	Rater int     `json:"rater"`
	Trust float64 `json:"trust"`
}

func (s *Server) handleTrust(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("rater id: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, TrustResponse{
		Rater: id,
		Trust: s.sys.TrustIn(rating.RaterID(id)),
	})
}

// MaliciousResponse lists flagged raters.
type MaliciousResponse struct {
	Raters []int `json:"raters"`
}

func (s *Server) handleMalicious(w http.ResponseWriter, _ *http.Request) {
	ids := s.sys.MaliciousRaters()
	resp := MaliciousResponse{Raters: make([]int, 0, len(ids))}
	for _, id := range ids {
		resp.Raters = append(resp.Raters, int(id))
	}
	writeJSON(w, http.StatusOK, resp)
}

// StatsResponse summarizes the system's state.
type StatsResponse struct {
	Ratings   int `json:"ratings"`
	Raters    int `json:"raters"`
	Malicious int `json:"malicious"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Ratings:   s.sys.Len(),
		Raters:    len(s.sys.TrustSnapshot()),
		Malicious: len(s.sys.MaliciousRaters()),
	})
}

func (s *Server) handleSnapshotGet(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.sys.WriteSnapshot(w); err != nil {
		// Headers are already out; nothing better to do than log-level
		// truncation, which the client sees as a broken body.
		return
	}
}

func (s *Server) handleSnapshotPut(w http.ResponseWriter, r *http.Request) {
	if err := s.sys.LoadSnapshot(r.Body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ErrorResponse is the wire form of every error.
type ErrorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
