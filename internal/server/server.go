// Package server exposes the trust-enhanced rating system as a small
// JSON-over-HTTP service — the deployment shape a marketplace backend
// would actually consume. It wraps a core.SafeSystem, so handlers are
// safe under concurrent requests.
//
// Endpoints (v1) — request/response shapes live in internal/api:
//
//	POST /v1/ratings              submit one rating batch (JSON array)
//	POST /v1/ratings:stream       bulk NDJSON ingest, streamed results
//	POST /v1/process              run a maintenance window {start,end}
//	GET  /v1/objects/{id}/aggregate   trust-weighted aggregate
//	GET  /v1/raters/{id}/trust        rater trust value
//	GET  /v1/malicious[?limit=&offset=]  raters below the trust threshold
//	GET  /v1/stats[?bounds=...]       state summary (+trust distribution)
//	GET  /v1/alerts[?since=&wait=]    long-poll detection alerts
//	GET  /v1/snapshot                 download the full state
//	PUT  /v1/snapshot                 replace the full state
//	GET  /healthz                     liveness
//
// Every non-2xx response is an api.Error envelope {code, message,
// retry_after?}; the code catalogue is documented in internal/api.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/rating"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/trust"
)

// Wire-contract aliases: the DTOs moved to internal/api so the server
// and the typed client share one versioned surface; these names stay
// for existing callers (repro facade, daemon tests).
type (
	// RatingPayload is the wire form of one rating.
	RatingPayload = api.RatingPayload
	// SubmitResponse reports how many ratings were accepted.
	SubmitResponse = api.SubmitResponse
	// ProcessRequest is the maintenance-window request body.
	ProcessRequest = api.ProcessRequest
	// ProcessResponse summarizes one maintenance pass.
	ProcessResponse = api.ProcessResponse
	// AggregateResponse is the wire form of an aggregate.
	AggregateResponse = api.AggregateResponse
	// TrustResponse is the wire form of a rater's trust.
	TrustResponse = api.TrustResponse
	// MaliciousResponse lists flagged raters.
	MaliciousResponse = api.MaliciousResponse
	// StatsResponse summarizes the system's state.
	StatsResponse = api.StatsResponse
)

// Backend is the state engine a Server fronts: the single-lock
// core.SafeSystem or the sharded shard.Engine. Handlers only need
// this surface, so the wire format and routes are identical for both
// deployment shapes.
type Backend interface {
	Submit(r rating.Rating) error
	SubmitAll(rs []rating.Rating) error
	Len() int
	ProcessWindow(start, end float64) (core.ProcessReport, error)
	Aggregate(obj rating.ObjectID) (core.AggregateResult, error)
	TrustIn(id rating.RaterID) float64
	TrustSnapshot() map[rating.RaterID]float64
	TrustDistribution(bounds []float64) []int
	RaterCount() int
	MaliciousRaters() []rating.RaterID
	WriteSnapshot(w io.Writer) error
	LoadSnapshot(r io.Reader) error
}

// Journal orders durable logging against in-memory application: a
// daemon that write-ahead-logs mutations implements it so that "append
// to the log" and "apply to the system" happen atomically with respect
// to snapshots (see cmd/ratingd). When a Journal is installed, the
// mutating endpoints route through it instead of touching the
// SafeSystem directly.
type Journal interface {
	// SubmitAll logs and applies a batch of pre-validated ratings.
	SubmitAll(rs []rating.Rating) error
	// ProcessWindow logs and runs one maintenance window.
	ProcessWindow(start, end float64) (core.ProcessReport, error)
	// Restore replaces the state with a snapshot and rebases the log.
	Restore(r io.Reader) error
}

// AsyncSubmitter is the optional streaming extension of a Journal: a
// submit that returns once the batch is enqueued (values copied) plus
// a wait for its durable flush. The stream endpoint uses it to decode
// the next NDJSON batch while the previous one group-commits; the
// sharded journal implements it over the Router.
type AsyncSubmitter interface {
	// SubmitAsync enqueues the batch and returns a wait function that
	// blocks until the batch is logged and applied. The slice may be
	// reused once SubmitAsync returns.
	SubmitAsync(rs []rating.Rating) (wait func() error, err error)
}

// ErrUnavailable marks a backend failure that should surface as a
// typed 503 rather than a 500: a cluster router wraps member
// transport errors with it so the handlers shed the unreachable range
// instead of reporting an internal fault.
var ErrUnavailable = errors.New("backend unavailable")

// streamPath is the bulk-ingest route; exempt from the whole-body
// size cap and the whole-request timeout (streams are bounded per
// line and per read instead — see stream.go).
const streamPath = "/v1/ratings:stream"

// Server is the HTTP facade over one rating system.
type Server struct {
	sys     Backend
	mux     *http.ServeMux
	handler http.Handler

	// journal, replica, alerts, cluster and features can be swapped at
	// runtime (promotion flips a follower into a primary on a live
	// server); jmu guards all five.
	jmu      sync.RWMutex
	journal  Journal
	replica  func() ReplicaInfo
	alerts   AlertSource
	cluster  ClusterView
	features api.DiscoveryFeatures

	dedupe     *dedupeCache
	cache      *readCache
	admission  *admission
	maxBody    int64
	reqTimeout time.Duration
	metrics    *serverMetrics

	streamBatch int // ratings per group-commit batch on the stream path
}

// Option customizes a Server.
type Option func(*Server)

// WithJournal routes mutations through j (write-ahead logging).
func WithJournal(j Journal) Option { return func(s *Server) { s.journal = j } }

// WithTelemetry registers the server's HTTP metrics (per-endpoint
// request counts, latencies, status codes, idempotency-cache hits,
// read-cache hit/miss families, admission counters) on reg and
// enables per-request instrumentation. A nil registry leaves the
// server uninstrumented.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(s *Server) { s.metrics = newServerMetrics(reg) }
}

// WithMaxBodyBytes caps request bodies; n <= 0 keeps the default
// (8 MiB). The streaming ingest route is exempt (it is bounded per
// line, not per body).
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// WithRequestTimeout bounds each request's handling time; 0 disables
// the per-request timeout.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.reqTimeout = d }
}

// WithDedupeCapacity sizes the idempotency cache (default 1024
// request IDs).
func WithDedupeCapacity(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.dedupe = newDedupeCache(n)
		}
	}
}

// WithReadCache sizes the aggregate/malicious read cache (default
// 4096 objects). n < 0 disables caching entirely; cached responses
// are bit-identical to uncached ones (see readcache.go), so this is a
// memory/latency trade only.
func WithReadCache(n int) Option {
	return func(s *Server) {
		if n < 0 {
			s.cache = nil
			return
		}
		if n == 0 {
			n = defaultReadCacheObjects
		}
		s.cache = newReadCache(n)
	}
}

// WithAdmission installs admission control on the mutating routes
// (see AdmissionConfig). A zero MaxConcurrent disables it.
func WithAdmission(cfg AdmissionConfig) Option {
	return func(s *Server) { s.admission = newAdmission(cfg) }
}

// WithStreamBatch sets how many ratings the stream endpoint coalesces
// per group-commit submit (default 512).
func WithStreamBatch(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.streamBatch = n
		}
	}
}

// New builds a Server around cfg with a core.SafeSystem backend.
func New(cfg core.Config, opts ...Option) (*Server, error) {
	sys, err := core.NewSafeSystem(cfg)
	if err != nil {
		return nil, err
	}
	return NewWith(sys, opts...)
}

// NewWith builds a Server around an existing backend — the way a
// sharded deployment fronts a shard.Engine.
func NewWith(backend Backend, opts ...Option) (*Server, error) {
	if backend == nil {
		return nil, errors.New("server: nil backend")
	}
	s := &Server{
		sys:         backend,
		mux:         http.NewServeMux(),
		dedupe:      newDedupeCache(1024),
		cache:       newReadCache(defaultReadCacheObjects),
		maxBody:     8 << 20,
		streamBatch: 512,
		features:    api.DiscoveryFeatures{StreamIngest: true},
	}
	for _, opt := range opts {
		opt(s)
	}
	s.routes()

	// Middleware, outermost first: panic containment (a handler bug
	// 500s one request instead of killing the daemon), then — for every
	// route but the stream — body limits and the per-request timeout.
	// Bulk ingest is legitimately long-lived and bounded per line (size
	// cap) and per read (idle deadline) instead, so it bypasses both: a
	// whole-request timeout would buffer the streamed response and cut
	// any ingest longer than the budget with a static 503, making the
	// resume-from-Lines protocol impossible (see stream.go).
	var inner http.Handler = s.mux
	if s.reqTimeout > 0 {
		inner = http.TimeoutHandler(inner, s.reqTimeout, timeoutBody)
	}
	limit := s.maxBody
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == streamPath {
			s.mux.ServeHTTP(w, r)
			return
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, limit)
		}
		if r.URL.Path == alertsPath {
			// A long poll legitimately outlives the per-request budget;
			// its wait parameter is clamped server-side instead.
			s.mux.ServeHTTP(w, r)
			return
		}
		inner.ServeHTTP(w, r)
	})
	// The replica and cluster gates sit outside the body/timeout stack
	// (they answer from sampled state without reading the body) but
	// inside panic containment; the version stamp is outermost so even
	// a timeout 503 or panic 500 carries X-Api-Version.
	s.handler = recoverPanics(stampVersion(s.replicaGate(s.clusterGate(h))))
	return s, nil
}

// timeoutBody is the envelope http.TimeoutHandler writes on a 503 cut
// — a static string by necessity, kept in the api.Error shape.
const timeoutBody = `{"code":"timeout","message":"request timed out"}`

// recoverPanics converts a handler panic into a 500 for that request,
// keeping the daemon alive.
func recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				if v == http.ErrAbortHandler { //nolint:errorlint // sentinel by identity
					panic(v)
				}
				writeErrorCode(w, r, http.StatusInternalServerError, api.CodeInternal,
					fmt.Errorf("internal panic: %v", v))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// System exposes the underlying backend (for preloading state in
// tools and tests).
func (s *Server) System() Backend { return s.sys }

var _ http.Handler = (*Server)(nil)

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

func (s *Server) routes() {
	// Each route is wrapped with its own telemetry label; observe is
	// the identity when no registry is installed. Mutating routes pass
	// admission control before touching the idempotency cache, so an
	// overloaded server sheds without consuming dedupe slots.
	s.mux.HandleFunc("POST /v1/ratings", s.observe("/v1/ratings", s.admit(s.idempotent(s.handleSubmit))))
	// The stream route is not wrapped in admit: one token held for the
	// whole lifetime of a bulk stream would starve unary mutations.
	// The handler acquires and releases a token per flushed batch
	// instead (see handleSubmitStream).
	s.mux.HandleFunc("POST "+streamPath, s.observe(streamPath, s.handleSubmitStream))
	s.mux.HandleFunc("POST /v1/process", s.observe("/v1/process", s.admit(s.idempotent(s.handleProcess))))
	s.mux.HandleFunc("GET /v1/objects/{id}/aggregate", s.observe("/v1/objects/{id}/aggregate", s.handleAggregate))
	s.mux.HandleFunc("GET /v1/raters/{id}/trust", s.observe("/v1/raters/{id}/trust", s.handleTrust))
	s.mux.HandleFunc("GET /v1/malicious", s.observe("/v1/malicious", s.handleMalicious))
	s.mux.HandleFunc("GET /v1/stats", s.observe("/v1/stats", s.handleStats))
	s.mux.HandleFunc("GET "+alertsPath, s.observe(alertsPath, s.handleAlerts))
	s.mux.HandleFunc("GET /v1/snapshot", s.observe("/v1/snapshot", s.handleSnapshotGet))
	s.mux.HandleFunc("PUT /v1/snapshot", s.observe("/v1/snapshot", s.admit(s.handleSnapshotPut)))
	s.mux.HandleFunc("GET /v1", s.observe("/v1", s.handleDiscovery))
	s.mux.HandleFunc("GET /v1/cluster", s.observe("/v1/cluster", s.handleCluster))
	s.mux.HandleFunc("GET /healthz", s.observe("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, api.HealthResponse{Status: "ok"})
	}))
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The body is a JSON array of ratings; a single rating is a
	// one-element array.
	var batch []api.RatingPayload
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&batch); err != nil {
		writeError(w, r, bodyErrStatus(err), fmt.Errorf("decode ratings: %w", err))
		return
	}
	// Validate up front so acceptance is all-or-nothing: nothing is
	// journaled or applied unless the whole batch is well-formed.
	rs := make([]rating.Rating, len(batch))
	for i, p := range batch {
		rs[i] = p.Rating()
		if err := rs[i].Validate(); err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("rating %d: %w", i, err))
			return
		}
	}
	// Ownership is all-or-nothing like validation: a batch touching an
	// unowned object is refused whole with the owner's URL, before
	// anything is journaled.
	for _, rt := range rs {
		if !s.checkOwnership(w, r, rt.Object) {
			return
		}
	}
	if journal := s.getJournal(); journal != nil {
		if err := journal.SubmitAll(rs); err != nil {
			// Durability is unavailable; refuse the write so the
			// client retries rather than accepting state a crash
			// would silently lose.
			writeError(w, r, http.StatusServiceUnavailable, fmt.Errorf("journal: %w", err))
			return
		}
	} else if err := s.sys.SubmitAll(rs); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	s.cache.invalidateRatings(rs)
	writeJSON(w, http.StatusOK, api.SubmitResponse{Accepted: len(rs)})
}

func (s *Server) handleProcess(w http.ResponseWriter, r *http.Request) {
	var req api.ProcessRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, r, bodyErrStatus(err), fmt.Errorf("decode process request: %w", err))
		return
	}
	if req.End <= req.Start {
		// Reject before journaling so the WAL only sees windows that
		// will replay successfully.
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("process window [%g,%g)", req.Start, req.End))
		return
	}
	if s.getCluster() != nil {
		// A member scanning only its owned range must never charge its
		// replicated trust state locally — the fold needs every node's
		// evidence. Windows run through the router's scan/apply
		// orchestration.
		writeEnvelope(w, r, http.StatusConflict, api.NewError(api.CodeConflict,
			"this node is a cluster member; maintenance windows run through the cluster router"))
		return
	}
	var rep core.ProcessReport
	var err error
	if journal := s.getJournal(); journal != nil {
		rep, err = journal.ProcessWindow(req.Start, req.End)
		if err != nil {
			writeError(w, r, http.StatusServiceUnavailable, fmt.Errorf("journal: %w", err))
			return
		}
	} else if rep, err = s.sys.ProcessWindow(req.Start, req.End); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	// A window rewrites trust, which feeds every aggregate and the
	// malicious list: drop the whole read cache.
	s.cache.invalidateAll()
	resp := api.ProcessResponse{
		Objects:      len(rep.Objects),
		Observations: len(rep.Observations),
		Degraded:     len(rep.DegradedObjects()),
	}
	for _, obj := range rep.Objects {
		resp.Suspicious += len(obj.Detection.SuspiciousWindows())
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("object id: %w", err))
		return
	}
	obj := rating.ObjectID(id)
	if !s.checkOwnership(w, r, obj) {
		return
	}
	agg, ok := s.cache.aggregate(obj, s.metrics)
	if !ok {
		gen := s.cache.snapshotGen(obj)
		agg, err = s.sys.Aggregate(obj)
		if err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, rating.ErrUnknownObject):
				status = http.StatusNotFound
			case errors.Is(err, trust.ErrNoTrustedRaters), errors.Is(err, trust.ErrNoRatings):
				status = http.StatusConflict
			case errors.Is(err, ErrUnavailable):
				status = http.StatusServiceUnavailable
			}
			writeError(w, r, status, err)
			return
		}
		s.cache.storeAggregate(obj, agg, gen)
	}
	writeJSON(w, http.StatusOK, api.AggregateResponse{
		Object:   int(agg.Object),
		Value:    agg.Value,
		Used:     agg.Used,
		Filtered: agg.Filtered,
		FellBack: agg.FellBack,
	})
}

func (s *Server) handleTrust(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("rater id: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, api.TrustResponse{
		Rater: id,
		Trust: s.sys.TrustIn(rating.RaterID(id)),
	})
}

func (s *Server) handleMalicious(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limitS, offsetS := q.Get("limit"), q.Get("offset")
	paginated := limitS != "" || offsetS != ""
	limit, offset := 0, 0
	var err error
	if limitS != "" {
		if limit, err = strconv.Atoi(limitS); err != nil || limit < 0 {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("limit %q: must be a non-negative integer", limitS))
			return
		}
	}
	if offsetS != "" {
		if offset, err = strconv.Atoi(offsetS); err != nil || offset < 0 {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("offset %q: must be a non-negative integer", offsetS))
			return
		}
	}

	// point_lo/point_hi restrict the answer to raters whose keyspace
	// point falls in [lo, hi) — the scatter-gather partition a cluster
	// router uses so members answer disjoint slices of the replicated
	// rater set. Absent both, the full list is returned.
	loS, hiS := q.Get("point_lo"), q.Get("point_hi")
	pointFiltered := loS != "" || hiS != ""
	var pointLo, pointHi uint64
	if pointFiltered {
		if loS == "" || hiS == "" {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("point_lo and point_hi must be given together"))
			return
		}
		if pointLo, err = strconv.ParseUint(loS, 10, 32); err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("point_lo %q: must be a uint32", loS))
			return
		}
		if pointHi, err = strconv.ParseUint(hiS, 10, 64); err != nil || pointHi > 1<<32 {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("point_hi %q: must be an integer in [0,2^32]", hiS))
			return
		}
	}

	ids, ok := s.cache.malicious(s.metrics)
	if !ok {
		gen := s.cache.snapshotGlobalGen()
		ids = s.sys.MaliciousRaters()
		s.cache.storeMalicious(ids, gen)
	}
	if pointFiltered {
		kept := make([]rating.RaterID, 0, len(ids))
		for _, id := range ids {
			if p := uint64(shard.RaterPoint(id)); p >= pointLo && p < pointHi {
				kept = append(kept, id)
			}
		}
		ids = kept
	}
	total := len(ids)
	// The IDs are sorted ascending (trust.Manager.Malicious), so a
	// page is a stable window of the collection between mutations.
	page := ids
	if paginated {
		if offset > len(page) {
			page = nil
		} else {
			page = page[offset:]
		}
		if limit > 0 && limit < len(page) {
			page = page[:limit]
		}
	}
	resp := api.MaliciousResponse{Raters: make([]int, 0, len(page))}
	for _, id := range page {
		resp.Raters = append(resp.Raters, int(id))
	}
	if paginated {
		resp.Page = &api.Page{Total: total, Offset: offset, Limit: limit}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ParseBounds parses the stats endpoint's bounds parameter — a
// comma-separated, strictly increasing list of trust upper bounds in
// (0, 1] — for callers that replicate the stats surface (the cluster
// router's merged handler).
func ParseBounds(s string) ([]float64, error) { return parseBounds(s) }

// parseBounds parses the stats endpoint's bounds parameter: a
// comma-separated, strictly increasing list of trust upper bounds in
// (0, 1].
func parseBounds(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	bounds := make([]float64, 0, len(parts))
	prev := 0.0
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bounds %q: %w", s, err)
		}
		if v <= prev || v > 1 {
			return nil, fmt.Errorf("bounds %q: values must be strictly increasing in (0,1]", s)
		}
		bounds = append(bounds, v)
		prev = v
	}
	return bounds, nil
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := api.StatsResponse{
		Ratings:   s.sys.Len(),
		Raters:    s.sys.RaterCount(),
		Malicious: len(s.sys.MaliciousRaters()),
	}
	if boundsS := r.URL.Query().Get("bounds"); boundsS != "" {
		bounds, err := parseBounds(boundsS)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, err)
			return
		}
		resp.Distribution = &api.TrustDistribution{
			Bounds: bounds,
			Counts: s.sys.TrustDistribution(bounds),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSnapshotGet(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.sys.WriteSnapshot(w); err != nil {
		// Headers are already out; nothing better to do than log-level
		// truncation, which the client sees as a broken body.
		return
	}
}

func (s *Server) handleSnapshotPut(w http.ResponseWriter, r *http.Request) {
	restore := s.sys.LoadSnapshot
	if journal := s.getJournal(); journal != nil {
		restore = journal.Restore
	}
	if err := restore(r.Body); err != nil {
		writeError(w, r, bodyErrStatus(err), err)
		return
	}
	// The restored state shares nothing with the cached one.
	s.cache.invalidateAll()
	w.WriteHeader(http.StatusNoContent)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the envelope with the status's default code.
func writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	writeErrorCode(w, r, status, api.CodeForStatus(status), err)
}

// writeErrorCode emits the api.Error envelope for this failure.
func writeErrorCode(w http.ResponseWriter, r *http.Request, status int, code string, err error) {
	writeEnvelope(w, r, status, api.NewError(code, "%s", err.Error()))
}

// writeEnvelope stamps the request's attribution ID onto the envelope
// and emits it. Every error path funnels through here, so request_id
// echoes uniformly on all envelopes (r may be nil on paths with no
// request in hand).
func writeEnvelope(w http.ResponseWriter, r *http.Request, status int, e *api.Error) {
	if r != nil {
		if rid := r.Header.Get(api.RequestIDHeader); rid != "" {
			e.RequestID = rid
		}
	}
	writeJSON(w, status, e)
}

// bodyErrStatus distinguishes an over-limit body (413) from ordinary
// malformed input (400).
func bodyErrStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}
