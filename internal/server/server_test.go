package server

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, *Client) {
	t.Helper()
	srv, err := New(core.Config{Detector: detector.Config{Threshold: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, NewClient(ts.URL, ts.Client())
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(core.Config{Detector: detector.Config{Order: -1}}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestHealthz(t *testing.T) {
	_, _, client := newTestServer(t)
	if !client.Healthy(context.Background()) {
		t.Fatal("health check failed")
	}
}

func TestSubmitAndAggregateFlow(t *testing.T) {
	_, _, client := newTestServer(t)
	ctx := context.Background()

	var batch []RatingPayload
	for i := 0; i < 30; i++ {
		batch = append(batch, RatingPayload{
			Rater: i + 1, Object: 42, Value: 0.8, Time: float64(i),
		})
	}
	accepted, err := client.Submit(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 30 {
		t.Fatalf("accepted %d", accepted)
	}

	proc, err := client.Process(ctx, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if proc.Objects != 1 || proc.Observations != 30 {
		t.Fatalf("process = %+v", proc)
	}
	// Thirty identical ratings: the constant window is flagged.
	if proc.Suspicious == 0 {
		t.Fatalf("process = %+v, want suspicious windows", proc)
	}

	agg, err := client.Aggregate(ctx, 42)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Object != 42 || agg.Value < 0 || agg.Value > 1 {
		t.Fatalf("aggregate = %+v", agg)
	}

	tr, err := client.Trust(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr <= 0 || tr >= 1 {
		t.Fatalf("trust = %g", tr)
	}

	mal, err := client.Malicious(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The whole clique was in suspicious windows with one rating each.
	if len(mal) == 0 {
		t.Fatal("no malicious raters flagged")
	}
}

func TestSubmitRejectsInvalid(t *testing.T) {
	_, _, client := newTestServer(t)
	_, err := client.Submit(context.Background(), []RatingPayload{{Rater: 1, Object: 1, Value: 3, Time: 0}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v", err)
	}
}

func TestSubmitRejectsMalformedJSON(t *testing.T) {
	_, ts, _ := newTestServer(t)
	res, err := http.Post(ts.URL+"/v1/ratings", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", res.StatusCode)
	}
}

func TestProcessRejectsBadWindow(t *testing.T) {
	_, _, client := newTestServer(t)
	_, err := client.Process(context.Background(), 10, 5)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v", err)
	}
}

func TestAggregateUnknownObject404(t *testing.T) {
	_, _, client := newTestServer(t)
	_, err := client.Aggregate(context.Background(), 999)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("err = %v", err)
	}
}

func TestAggregateBadID(t *testing.T) {
	_, ts, _ := newTestServer(t)
	res, err := http.Get(ts.URL + "/v1/objects/notanumber/aggregate")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", res.StatusCode)
	}
}

func TestUnknownRaterNeutralTrust(t *testing.T) {
	_, _, client := newTestServer(t)
	tr, err := client.Trust(context.Background(), 12345)
	if err != nil {
		t.Fatal(err)
	}
	if tr != 0.5 {
		t.Fatalf("trust = %g", tr)
	}
}

func TestSnapshotRoundTripOverHTTP(t *testing.T) {
	_, _, client := newTestServer(t)
	ctx := context.Background()
	if _, err := client.Submit(ctx, []RatingPayload{{Rater: 1, Object: 7, Value: 0.6, Time: 1}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := client.Snapshot(ctx, &buf); err != nil {
		t.Fatal(err)
	}

	_, _, client2 := newTestServer(t)
	if err := client2.Restore(ctx, &buf); err != nil {
		t.Fatal(err)
	}
	agg, err := client2.Aggregate(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Value != 0.6 {
		t.Fatalf("restored aggregate = %+v", agg)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	_, _, client := newTestServer(t)
	err := client.Restore(context.Background(), strings.NewReader("not json"))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v", err)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts, _ := newTestServer(t)
	res, err := http.Get(ts.URL + "/v1/ratings") // POST-only route
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", res.StatusCode)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, _, client := newTestServer(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_, err := client.Submit(ctx, []RatingPayload{{
					Rater: w*100 + i, Object: w, Value: 0.5, Time: float64(i),
				}})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := client.Trust(ctx, w*100+i); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestStatsEndpoint(t *testing.T) {
	_, _, client := newTestServer(t)
	ctx := context.Background()
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ratings != 0 || stats.Raters != 0 || stats.Malicious != 0 {
		t.Fatalf("fresh stats = %+v", stats)
	}
	if _, err := client.Submit(ctx, []RatingPayload{
		{Rater: 1, Object: 1, Value: 0.7, Time: 1},
		{Rater: 2, Object: 1, Value: 0.6, Time: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Process(ctx, 0, 30); err != nil {
		t.Fatal(err)
	}
	stats, err = client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ratings != 2 || stats.Raters != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}
