package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/rating"
)

// maxStreamLineBytes bounds one NDJSON line. The stream body as a
// whole is unbounded (that is the point of bulk ingest); the per-line
// cap is what keeps a hostile stream from ballooning the read buffer.
const maxStreamLineBytes = 1 << 20

// maxStreamPending bounds how many group-commit batches may be in
// flight behind the decoder on the async (Router) path: enough to
// overlap decode with WAL fsync + apply, small enough that a submit
// failure is noticed within two batches.
const maxStreamPending = 2

// streamState is the pooled per-request scratch of the stream
// endpoint: the read buffer, the coalesced batch, and the per-batch
// object set for cache invalidation. Steady state, an accepted line
// costs zero heap allocations — the buffers below are reused across
// requests and the fast-path line parser (parseRatingLine) allocates
// nothing.
type streamState struct {
	buf   []byte          // read buffer; r, w index the unconsumed window
	batch []rating.Rating // current group-commit batch
	objs  []rating.ObjectID
}

var streamPool = sync.Pool{
	New: func() any {
		return &streamState{
			buf:   make([]byte, 64<<10),
			batch: make([]rating.Rating, 0, 1024),
			objs:  make([]rating.ObjectID, 0, 64),
		}
	},
}

// pendingBatch is one async-submitted batch awaiting its group
// commit: the wait handle, the admission token to return once it
// settles, and the objects to invalidate when it does.
type pendingBatch struct {
	wait    func() error
	release func() // admission-token return; nil without a limiter
	objs    []rating.ObjectID
	count   int
}

// lineReader yields newline-delimited lines from an io.Reader through
// one reusable buffer, growing it only up to the per-line cap.
type lineReader struct {
	src io.Reader
	buf []byte
	r   int // next unread byte
	w   int // end of buffered data
	eof bool
}

var errLineTooLong = errors.New("line exceeds 1 MiB limit")

// next returns the next line (without the trailing newline). A final
// unterminated line is returned before io.EOF. The returned slice
// aliases the internal buffer and is valid until the next call.
func (l *lineReader) next() ([]byte, error) {
	for {
		if i := bytes.IndexByte(l.buf[l.r:l.w], '\n'); i >= 0 {
			line := l.buf[l.r : l.r+i]
			l.r += i + 1
			return line, nil
		}
		if l.eof {
			if l.r == l.w {
				return nil, io.EOF
			}
			line := l.buf[l.r:l.w]
			l.r = l.w
			return line, nil
		}
		// Compact, then grow if the partial line fills the buffer.
		if l.r > 0 {
			copy(l.buf, l.buf[l.r:l.w])
			l.w -= l.r
			l.r = 0
		}
		if l.w == len(l.buf) {
			if len(l.buf) >= maxStreamLineBytes {
				return nil, errLineTooLong
			}
			grown := make([]byte, min(len(l.buf)*2, maxStreamLineBytes))
			copy(grown, l.buf[:l.w])
			l.buf = grown
		}
		n, err := l.src.Read(l.buf[l.w:])
		l.w += n
		if err == io.EOF {
			l.eof = true
		} else if err != nil {
			return nil, err
		}
	}
}

// idleDeadlineReader arms a rolling read/write deadline on the
// underlying connection before each body read. The stream route is
// exempt from the whole-request timeout — a bulk ingest legitimately
// runs for minutes — so its bound is per unit of progress instead:
// every read must complete within idle, and the response (per-line
// rejections, the summary) stays writable on the same cadence. The
// deadlines override the http.Server's connection-wide
// ReadTimeout/WriteTimeout; set errors are ignored so transports
// without deadline support (test recorders) degrade to unbounded
// reads.
type idleDeadlineReader struct {
	src  io.Reader
	rc   *http.ResponseController
	idle time.Duration
}

func (d *idleDeadlineReader) Read(p []byte) (int, error) {
	dl := time.Now().Add(d.idle)
	_ = d.rc.SetReadDeadline(dl)
	_ = d.rc.SetWriteDeadline(dl)
	return d.src.Read(p)
}

// handleSubmitStream is POST /v1/ratings:stream: one rating per NDJSON
// line in, a streamed NDJSON result out. Valid lines coalesce into
// group-commit batches fed to the Journal (per-batch WAL AppendAll on
// the durable path); invalid lines are rejected individually with an
// api.StreamLineError, and the response always ends with one
// api.StreamSummary line. The endpoint deliberately skips the
// idempotency cache — a bulk stream is not replayable from a buffered
// response — so clients must not blindly re-send a whole stream after
// a cut; the summary's Lines field tells them where to resume.
//
// Admission control is per flushed batch, not per request: a stream
// holds a token only while one of its batches is actually submitting
// (or, on the async path, awaiting its group commit), so a
// long-running ingest does not pin mutation capacity away from unary
// traffic between batches. A shed batch ends the stream with an
// overloaded summary carrying the retry hint.
func (s *Server) handleSubmitStream(w http.ResponseWriter, r *http.Request) {
	st := streamPool.Get().(*streamState)
	defer func() {
		st.batch = st.batch[:0]
		st.objs = st.objs[:0]
		streamPool.Put(st)
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")

	journal := s.getJournal()
	async, _ := journal.(AsyncSubmitter)
	body := io.Reader(r.Body)
	if s.reqTimeout > 0 {
		body = &idleDeadlineReader{src: r.Body, rc: http.NewResponseController(w), idle: s.reqTimeout}
	} else {
		// Timeouts disabled: clear any server-wide connection deadlines
		// so a long ingest is not cut mid-body.
		rc := http.NewResponseController(w)
		_ = rc.SetReadDeadline(time.Time{})
		_ = rc.SetWriteDeadline(time.Time{})
	}
	lr := &lineReader{src: body, buf: st.buf}
	defer func() { st.buf = lr.buf }() // keep a grown buffer pooled

	adm := s.admission
	// Async pipelining depth: at most maxStreamPending batches in
	// flight, but never more than the limiter's whole capacity — each
	// in-flight batch holds one admission token and settling runs on
	// this goroutine, so holding every token while waiting for another
	// would deadlock the stream against itself.
	depth := maxStreamPending
	if adm != nil && adm.cfg.MaxConcurrent < depth {
		depth = adm.cfg.MaxConcurrent
	}

	var (
		lines, accepted, rejected int
		pending                   []pendingBatch
		terminal                  *api.Error // first fatal error; ends the stream
	)

	// settle waits out the oldest pending batch and folds its outcome.
	// The batch was already enqueued, so whatever wait reports, the
	// router may have flushed it — on a multi-shard journal even a
	// failed flush can have applied on some shards. Its objects are
	// therefore invalidated unconditionally; skipping that would leave
	// cached aggregates stale forever, breaking the readCache contract
	// that cached answers are bit-identical to the backend.
	settle := func() {
		p := pending[0]
		pending = pending[1:]
		err := p.wait()
		if p.release != nil {
			p.release()
		}
		s.cache.invalidateObjectList(p.objs)
		if err != nil {
			if terminal == nil {
				terminal = api.NewError(api.CodeUnavailable, "journal: %v", err)
			}
			return
		}
		accepted += p.count
	}

	// confirm settles the oldest pending batches until at most keep
	// remain. It keeps draining after a terminal error: enqueued
	// batches commit in the background whether or not the stream
	// survived, so their waits and cache invalidations must still run.
	confirm := func(keep int) {
		for len(pending) > keep {
			settle()
		}
	}

	flush := func() {
		if len(st.batch) == 0 || terminal != nil {
			return
		}
		if async != nil {
			// Make room in the pipeline (and, under a small limiter,
			// return a token) before admitting the next batch.
			confirm(depth - 1)
			if terminal != nil {
				return
			}
		}
		var release func()
		if adm != nil {
			result, waited := adm.acquire(r)
			s.metrics.admission(string(result), waited)
			if result != admitted {
				terminal = api.NewError(api.CodeOverloaded,
					"overloaded: stream batch shed (%s)", result).
					WithRetryAfter(adm.cfg.RetryAfter.Seconds())
				return
			}
			release = adm.release
		}
		s.metrics.streamBatch()
		if async != nil {
			wait, err := async.SubmitAsync(st.batch)
			if err != nil {
				if release != nil {
					release()
				}
				terminal = api.NewError(api.CodeUnavailable, "journal: %v", err)
				return
			}
			pending = append(pending, pendingBatch{
				wait:    wait,
				release: release,
				objs:    append([]rating.ObjectID(nil), st.objs...),
				count:   len(st.batch),
			})
			st.batch, st.objs = st.batch[:0], st.objs[:0]
			return
		}
		var err error
		if journal != nil {
			err = journal.SubmitAll(st.batch)
		} else {
			err = s.sys.SubmitAll(st.batch)
		}
		if release != nil {
			release()
		}
		// Invalidate even on error: a failed multi-shard submit may
		// still have applied on some shards.
		s.cache.invalidateObjectList(st.objs)
		if err != nil {
			terminal = api.NewError(api.CodeUnavailable, "journal: %v", err)
			return
		}
		accepted += len(st.batch)
		st.batch, st.objs = st.batch[:0], st.objs[:0]
	}

	enc := json.NewEncoder(w)
	rejectLineCode := func(n int, code, msg string) {
		rejected++
		s.metrics.streamReject()
		_ = enc.Encode(api.StreamLineError{Line: n, Code: code, Message: msg})
	}
	rejectLine := func(n int, msg string) { rejectLineCode(n, api.CodeBadRequest, msg) }
	cview := s.getCluster()

	for terminal == nil {
		line, err := lr.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			code := api.CodeBadRequest
			if !errors.Is(err, errLineTooLong) {
				code = api.CodeUnavailable // transport failure mid-stream
			}
			terminal = api.NewError(code, "read stream: %v", err)
			break
		}
		// Every physical line counts, blank or not: Lines maps 1:1 to
		// the client's input framing so resume-from-Lines is exact.
		lines++
		s.metrics.streamLine()
		// Tolerate CRLF framing and skip blank lines (trailing
		// newlines at end of a stream are not ratings).
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}

		p, ok := parseRatingLine(line)
		if !ok {
			// Slow path: the strict decoder agrees on what is valid and
			// produces the authoritative error message.
			if err := decodeStrict(line, &p); err != nil {
				rejectLine(lines, fmt.Sprintf("decode rating: %v", err))
				continue
			}
		}
		rt := p.Rating()
		if err := rt.Validate(); err != nil {
			rejectLine(lines, err.Error())
			continue
		}
		if cview != nil && !cview.OwnsObject(rt.Object) {
			// A stream is per-line, so a misrouted object rejects that
			// line (naming the owner) instead of cutting the stream.
			rejectLineCode(lines, api.CodeWrongNode,
				fmt.Sprintf("object %d is owned by %s", rt.Object, cview.OwnerURL(rt.Object)))
			continue
		}
		st.batch = append(st.batch, rt)
		st.objs = appendObject(st.objs, rt.Object)
		if len(st.batch) >= s.streamBatch {
			flush()
		}
	}
	flush()
	// Drain every pending batch on every exit path — terminal error
	// included — so no enqueued batch escapes its wait and cache
	// invalidation.
	confirm(0)

	summary := api.StreamSummary{Accepted: accepted, Rejected: rejected, Lines: lines}
	if terminal != nil {
		summary.Code, summary.Message = terminal.Code, terminal.Message
		summary.RetryAfter = terminal.RetryAfter
	}
	_ = enc.Encode(summary)
}

// appendObject adds obj to the batch's object set. The set is a small
// slice scanned linearly: batches hold at most a few hundred ratings
// over (typically) far fewer distinct objects, and a slice keeps the
// steady-state path allocation-free where a map would not.
func appendObject(objs []rating.ObjectID, obj rating.ObjectID) []rating.ObjectID {
	for _, o := range objs {
		if o == obj {
			return objs
		}
	}
	return append(objs, obj)
}

// invalidateObjectList is invalidateRatings over a pre-deduplicated
// object list.
func (c *readCache) invalidateObjectList(objs []rating.ObjectID) {
	if c == nil || len(objs) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, obj := range objs {
		c.bumpLocked(obj)
	}
}

// decodeStrict is the unary endpoint's decoding contract applied to
// one line: unknown fields are errors, trailing garbage is an error.
func decodeStrict(line []byte, p *api.RatingPayload) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(p); err != nil {
		return err
	}
	// A second token means trailing content after the object.
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("trailing data after rating object")
	}
	return nil
}
