package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/api"
	"repro/internal/rating"
)

// maxStreamLineBytes bounds one NDJSON line. The stream body as a
// whole is unbounded (that is the point of bulk ingest); the per-line
// cap is what keeps a hostile stream from ballooning the read buffer.
const maxStreamLineBytes = 1 << 20

// maxStreamPending bounds how many group-commit batches may be in
// flight behind the decoder on the async (Router) path: enough to
// overlap decode with WAL fsync + apply, small enough that a submit
// failure is noticed within two batches.
const maxStreamPending = 2

// streamState is the pooled per-request scratch of the stream
// endpoint: the read buffer, the coalesced batch, and the per-batch
// object set for cache invalidation. Steady state, an accepted line
// costs zero heap allocations — the buffers below are reused across
// requests and the fast-path line parser (parseRatingLine) allocates
// nothing.
type streamState struct {
	buf   []byte          // read buffer; r, w index the unconsumed window
	batch []rating.Rating // current group-commit batch
	objs  []rating.ObjectID
}

var streamPool = sync.Pool{
	New: func() any {
		return &streamState{
			buf:   make([]byte, 64<<10),
			batch: make([]rating.Rating, 0, 1024),
			objs:  make([]rating.ObjectID, 0, 64),
		}
	},
}

// pendingBatch is one async-submitted batch awaiting its group
// commit: the wait handle plus the objects to invalidate on success.
type pendingBatch struct {
	wait  func() error
	objs  []rating.ObjectID
	count int
}

// lineReader yields newline-delimited lines from an io.Reader through
// one reusable buffer, growing it only up to the per-line cap.
type lineReader struct {
	src io.Reader
	buf []byte
	r   int // next unread byte
	w   int // end of buffered data
	eof bool
}

var errLineTooLong = errors.New("line exceeds 1 MiB limit")

// next returns the next line (without the trailing newline). A final
// unterminated line is returned before io.EOF. The returned slice
// aliases the internal buffer and is valid until the next call.
func (l *lineReader) next() ([]byte, error) {
	for {
		if i := bytes.IndexByte(l.buf[l.r:l.w], '\n'); i >= 0 {
			line := l.buf[l.r : l.r+i]
			l.r += i + 1
			return line, nil
		}
		if l.eof {
			if l.r == l.w {
				return nil, io.EOF
			}
			line := l.buf[l.r:l.w]
			l.r = l.w
			return line, nil
		}
		// Compact, then grow if the partial line fills the buffer.
		if l.r > 0 {
			copy(l.buf, l.buf[l.r:l.w])
			l.w -= l.r
			l.r = 0
		}
		if l.w == len(l.buf) {
			if len(l.buf) >= maxStreamLineBytes {
				return nil, errLineTooLong
			}
			grown := make([]byte, min(len(l.buf)*2, maxStreamLineBytes))
			copy(grown, l.buf[:l.w])
			l.buf = grown
		}
		n, err := l.src.Read(l.buf[l.w:])
		l.w += n
		if err == io.EOF {
			l.eof = true
		} else if err != nil {
			return nil, err
		}
	}
}

// handleSubmitStream is POST /v1/ratings:stream: one rating per NDJSON
// line in, a streamed NDJSON result out. Valid lines coalesce into
// group-commit batches fed to the Journal (per-batch WAL AppendAll on
// the durable path); invalid lines are rejected individually with an
// api.StreamLineError, and the response always ends with one
// api.StreamSummary line. The endpoint deliberately skips the
// idempotency cache — a bulk stream is not replayable from a buffered
// response — so clients must not blindly re-send a whole stream after
// a cut; the summary's Lines field tells them where to resume.
func (s *Server) handleSubmitStream(w http.ResponseWriter, r *http.Request) {
	st := streamPool.Get().(*streamState)
	defer func() {
		st.batch = st.batch[:0]
		st.objs = st.objs[:0]
		streamPool.Put(st)
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")

	async, _ := s.journal.(AsyncSubmitter)
	lr := &lineReader{src: r.Body, buf: st.buf}
	defer func() { st.buf = lr.buf }() // keep a grown buffer pooled

	var (
		lines, accepted, rejected int
		pending                   []pendingBatch
		terminal                  *api.Error // first fatal error; ends the stream
	)

	// confirm settles the oldest pending batches until at most keep
	// remain, folding successes into accepted and cache invalidation.
	confirm := func(keep int) {
		for len(pending) > keep && terminal == nil {
			p := pending[0]
			pending = pending[1:]
			if err := p.wait(); err != nil {
				terminal = &api.Error{Code: api.CodeUnavailable, Message: fmt.Sprintf("journal: %v", err)}
				return
			}
			accepted += p.count
			s.cache.invalidateObjectList(p.objs)
		}
	}

	flush := func() {
		if len(st.batch) == 0 || terminal != nil {
			return
		}
		s.metrics.streamBatch()
		if async != nil {
			wait, err := async.SubmitAsync(st.batch)
			if err != nil {
				terminal = &api.Error{Code: api.CodeUnavailable, Message: fmt.Sprintf("journal: %v", err)}
				return
			}
			pending = append(pending, pendingBatch{
				wait:  wait,
				objs:  append([]rating.ObjectID(nil), st.objs...),
				count: len(st.batch),
			})
			st.batch, st.objs = st.batch[:0], st.objs[:0]
			confirm(maxStreamPending)
			return
		}
		var err error
		if s.journal != nil {
			err = s.journal.SubmitAll(st.batch)
		} else {
			err = s.sys.SubmitAll(st.batch)
		}
		if err != nil {
			terminal = &api.Error{Code: api.CodeUnavailable, Message: fmt.Sprintf("journal: %v", err)}
			return
		}
		accepted += len(st.batch)
		s.cache.invalidateObjectList(st.objs)
		st.batch, st.objs = st.batch[:0], st.objs[:0]
	}

	enc := json.NewEncoder(w)
	rejectLine := func(n int, msg string) {
		rejected++
		s.metrics.streamReject()
		_ = enc.Encode(api.StreamLineError{Line: n, Code: api.CodeBadRequest, Message: msg})
	}

	for terminal == nil {
		line, err := lr.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			code := api.CodeBadRequest
			if !errors.Is(err, errLineTooLong) {
				code = api.CodeUnavailable // transport failure mid-stream
			}
			terminal = &api.Error{Code: code, Message: fmt.Sprintf("read stream: %v", err)}
			break
		}
		// Tolerate CRLF framing and skip blank lines (trailing
		// newlines at end of a stream are not ratings).
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		lines++
		s.metrics.streamLine()

		p, ok := parseRatingLine(line)
		if !ok {
			// Slow path: the strict decoder agrees on what is valid and
			// produces the authoritative error message.
			if err := decodeStrict(line, &p); err != nil {
				rejectLine(lines, fmt.Sprintf("decode rating: %v", err))
				continue
			}
		}
		rt := p.Rating()
		if err := rt.Validate(); err != nil {
			rejectLine(lines, err.Error())
			continue
		}
		st.batch = append(st.batch, rt)
		st.objs = appendObject(st.objs, rt.Object)
		if len(st.batch) >= s.streamBatch {
			flush()
		}
	}
	flush()
	confirm(0)

	summary := api.StreamSummary{Accepted: accepted, Rejected: rejected, Lines: lines}
	if terminal != nil {
		summary.Code, summary.Message = terminal.Code, terminal.Message
	}
	_ = enc.Encode(summary)
}

// appendObject adds obj to the batch's object set. The set is a small
// slice scanned linearly: batches hold at most a few hundred ratings
// over (typically) far fewer distinct objects, and a slice keeps the
// steady-state path allocation-free where a map would not.
func appendObject(objs []rating.ObjectID, obj rating.ObjectID) []rating.ObjectID {
	for _, o := range objs {
		if o == obj {
			return objs
		}
	}
	return append(objs, obj)
}

// invalidateObjectList is invalidateRatings over a pre-deduplicated
// object list.
func (c *readCache) invalidateObjectList(objs []rating.ObjectID) {
	if c == nil || len(objs) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, obj := range objs {
		c.bumpLocked(obj)
	}
}

// decodeStrict is the unary endpoint's decoding contract applied to
// one line: unknown fields are errors, trailing garbage is an error.
func decodeStrict(line []byte, p *api.RatingPayload) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(p); err != nil {
		return err
	}
	// A second token means trailing content after the object.
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("trailing data after rating object")
	}
	return nil
}
