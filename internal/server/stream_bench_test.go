package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/rating"
)

// discardJournal accepts every batch without applying it, so the
// stream benchmarks time the protocol side alone: line framing, the
// fast-path parser, validation and batch coalescing, without the
// backend's merge cost.
type discardJournal struct{}

func (discardJournal) SubmitAll(rs []rating.Rating) error { return nil }
func (discardJournal) SubmitAsync(rs []rating.Rating) (func() error, error) {
	return func() error { return nil }, nil
}
func (discardJournal) ProcessWindow(start, end float64) (core.ProcessReport, error) {
	return core.ProcessReport{}, nil
}
func (discardJournal) Restore(r io.Reader) error { return nil }

// benchStreamBody renders n seeded full-precision ratings as NDJSON —
// full precision so the 17-digit floats exercise the parser's
// strconv tail, the shape real clients (and the serving benchmark)
// produce.
func benchStreamBody(n int) []byte {
	rng := randx.New(7)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := 0; i < n; i++ {
		p := RatingPayload{
			Rater:  rng.Intn(512) + 1,
			Object: rng.Intn(8),
			Value:  rng.Float64(),
			Time:   rng.Float64() * 365,
		}
		if err := enc.Encode(p); err != nil {
			panic(err)
		}
	}
	return buf.Bytes()
}

// BenchmarkStreamDecode is the stream endpoint's protocol cost per
// rating: handler-level (no socket), discarding journal.
func BenchmarkStreamDecode(b *testing.B) {
	sys, err := core.NewSafeSystem(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewWith(sys, WithJournal(discardJournal{}))
	if err != nil {
		b.Fatal(err)
	}
	const lines = 10000
	body := benchStreamBody(lines)
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/ratings:stream", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/x-ndjson")
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != 200 {
			b.Fatalf("status %d", w.Code)
		}
	}
	b.ReportMetric(float64(b.N)*lines/b.Elapsed().Seconds(), "ratings/s")
}
