package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/randx"
	"repro/internal/rating"
)

// streamBody renders payloads as NDJSON.
func streamBody(payloads []RatingPayload) string {
	var b strings.Builder
	enc := json.NewEncoder(&b)
	for _, p := range payloads {
		_ = enc.Encode(p)
	}
	return b.String()
}

func seededPayloads(n int, seed int64) []RatingPayload {
	rng := randx.New(seed)
	ps := make([]RatingPayload, n)
	for i := range ps {
		ps[i] = RatingPayload{
			Rater:  rng.Intn(40) + 1,
			Object: rng.Intn(8),
			Value:  math.Round(rng.Float64()*1000) / 1000,
			Time:   float64(i) / 10,
		}
	}
	return ps
}

func TestStreamAcceptsAll(t *testing.T) {
	_, ts, client := newTestServer(t)
	_ = ts
	payloads := seededPayloads(1000, 7)
	sum, rejects, err := client.SubmitStream(context.Background(), strings.NewReader(streamBody(payloads)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rejects) != 0 {
		t.Fatalf("rejects = %v", rejects)
	}
	if sum.Accepted != 1000 || sum.Rejected != 0 || sum.Lines != 1000 {
		t.Fatalf("summary = %+v", sum)
	}
}

// TestStreamConformance proves the streaming path leaves the backend in
// the exact state the unary path does: same ratings in, bit-identical
// aggregates, trust values, and malicious list out.
func TestStreamConformance(t *testing.T) {
	payloads := seededPayloads(2000, 42)

	_, _, unary := newTestServer(t)
	_, _, stream := newTestServer(t)
	ctx := context.Background()

	if _, err := unary.Submit(ctx, payloads); err != nil {
		t.Fatal(err)
	}
	sum, _, err := stream.SubmitStream(ctx, strings.NewReader(streamBody(payloads)))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Accepted != len(payloads) {
		t.Fatalf("stream accepted %d of %d", sum.Accepted, len(payloads))
	}

	if _, err := unary.Process(ctx, 0, 300); err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Process(ctx, 0, 300); err != nil {
		t.Fatal(err)
	}

	for obj := 0; obj < 8; obj++ {
		a, errA := unary.Aggregate(ctx, obj)
		b, errB := stream.Aggregate(ctx, obj)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("object %d: unary err %v, stream err %v", obj, errA, errB)
		}
		if errA != nil {
			continue
		}
		if a != b || math.Float64bits(a.Value) != math.Float64bits(b.Value) {
			t.Fatalf("object %d: unary %+v != stream %+v", obj, a, b)
		}
	}
	for rater := 1; rater <= 40; rater++ {
		a, _ := unary.Trust(ctx, rater)
		b, _ := stream.Trust(ctx, rater)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("rater %d: trust %g != %g", rater, a, b)
		}
	}
	ma, _ := unary.Malicious(ctx)
	mb, _ := stream.Malicious(ctx)
	if fmt.Sprint(ma) != fmt.Sprint(mb) {
		t.Fatalf("malicious: unary %v != stream %v", ma, mb)
	}
}

func TestStreamRejectsBadLinesIndividually(t *testing.T) {
	srv, _, client := newTestServer(t)
	body := strings.Join([]string{
		`{"rater":1,"object":1,"value":0.5,"time":1}`,
		`{"rater":2,"object":1,"value":7,"time":1}`, // out of range
		`not json at all`,
		``, // blank: skipped, not counted
		`{"rater":3,"object":1,"value":0.25,"time":2}`,
		`{"rater":4,"object":1,"value":0.5,"time":3,"extra":true}`, // unknown field
	}, "\n")
	sum, rejects, err := client.SubmitStream(context.Background(), strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Lines != 5 || sum.Accepted != 2 || sum.Rejected != 3 {
		t.Fatalf("summary = %+v", sum)
	}
	wantLines := []int{2, 3, 5}
	if len(rejects) != len(wantLines) {
		t.Fatalf("rejects = %+v", rejects)
	}
	for i, re := range rejects {
		if re.Line != wantLines[i] || re.Code != api.CodeBadRequest || re.Message == "" {
			t.Fatalf("reject %d = %+v", i, re)
		}
	}
	if got := srv.System().Len(); got != 2 {
		t.Fatalf("backend holds %d ratings, want 2", got)
	}
}

func TestStreamCRLFAndTrailingNewline(t *testing.T) {
	_, _, client := newTestServer(t)
	body := "{\"rater\":1,\"object\":1,\"value\":0.5,\"time\":1}\r\n" +
		"{\"rater\":2,\"object\":1,\"value\":0.6,\"time\":2}\n\n"
	sum, rejects, err := client.SubmitStream(context.Background(), strings.NewReader(body))
	if err != nil || len(rejects) != 0 {
		t.Fatalf("err=%v rejects=%v", err, rejects)
	}
	if sum.Accepted != 2 || sum.Lines != 2 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestStreamOversizeLineTerminates(t *testing.T) {
	_, _, client := newTestServer(t)
	body := `{"rater":1,"object":1,"value":0.5,"time":1}` + "\n" +
		`{"rater":2,"object":1,"value":0.5,"padding":"` + strings.Repeat("x", maxStreamLineBytes+16) + `"}`
	sum, _, err := client.SubmitStream(context.Background(), strings.NewReader(body))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeBadRequest {
		t.Fatalf("err = %v", err)
	}
	// The valid first line was already examined; the summary says so.
	if sum.Lines != 1 || sum.Code != api.CodeBadRequest {
		t.Fatalf("summary = %+v", sum)
	}
}

// asyncJournal implements Journal + AsyncSubmitter and checks the
// caller honors the "slice reusable after return" contract by stashing
// a fingerprint of every batch at enqueue time.
type asyncJournal struct {
	sys Backend

	mu      sync.Mutex
	batches [][]rating.Rating
	waits   int
	fail    error
}

func (j *asyncJournal) SubmitAll(rs []rating.Rating) error { return j.sys.SubmitAll(rs) }

func (j *asyncJournal) ProcessWindow(start, end float64) (core.ProcessReport, error) {
	return j.sys.ProcessWindow(start, end)
}

func (j *asyncJournal) Restore(r io.Reader) error { return j.sys.LoadSnapshot(r) }

func (j *asyncJournal) SubmitAsync(rs []rating.Rating) (func() error, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.fail != nil {
		return nil, j.fail
	}
	batch := append([]rating.Rating(nil), rs...)
	j.batches = append(j.batches, batch)
	return func() error {
		j.mu.Lock()
		j.waits++
		j.mu.Unlock()
		return j.sys.SubmitAll(batch)
	}, nil
}

func newAsyncServer(t *testing.T, j *asyncJournal, opts ...Option) (*Server, *Client) {
	t.Helper()
	srv, err := New(core.Config{Detector: detector.Config{Threshold: 0.05}},
		append([]Option{WithJournal(j)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	j.sys = srv.System()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL, ts.Client())
}

func TestStreamUsesAsyncJournal(t *testing.T) {
	j := &asyncJournal{}
	srv, client := newAsyncServer(t, j, WithStreamBatch(64))
	payloads := seededPayloads(300, 3)
	sum, _, err := client.SubmitStream(context.Background(), strings.NewReader(streamBody(payloads)))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Accepted != 300 {
		t.Fatalf("summary = %+v", sum)
	}
	j.mu.Lock()
	batches, waits := len(j.batches), j.waits
	total := 0
	for _, b := range j.batches {
		total += len(b)
	}
	j.mu.Unlock()
	if batches != (300+63)/64 || waits != batches || total != 300 {
		t.Fatalf("batches=%d waits=%d total=%d", batches, waits, total)
	}
	if srv.System().Len() != 300 {
		t.Fatalf("backend holds %d", srv.System().Len())
	}
}

func TestStreamAsyncSubmitFailureIsTerminal(t *testing.T) {
	j := &asyncJournal{fail: errors.New("wal down")}
	_, client := newAsyncServer(t, j, WithStreamBatch(8))
	payloads := seededPayloads(64, 5)
	sum, _, err := client.SubmitStream(context.Background(), strings.NewReader(streamBody(payloads)))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnavailable {
		t.Fatalf("err = %v", err)
	}
	if sum.Accepted != 0 || sum.Code != api.CodeUnavailable {
		t.Fatalf("summary = %+v", sum)
	}
}

// TestParseRatingLineMatchesStrictDecoder cross-checks the fast path
// against the strict encoding/json decoder: whenever the fast path
// claims a line, the strict decoder must accept it too and every field
// must match bit-for-bit.
func TestParseRatingLineMatchesStrictDecoder(t *testing.T) {
	lines := []string{
		`{"rater":1,"object":2,"value":0.5,"time":3}`,
		`{"rater":-4,"object":0,"value":0.125,"time":0.5}`,
		`{"value":0.1,"time":0.2}`,
		`{"rater":7,"object":9,"value":1,"time":1e3}`,
		`{"rater":7,"object":9,"value":0.333,"time":2.5E2}`,
		`{"rater":7,"object":9,"value":1e-3,"time":-0}`,
		`{"rater":7,"object":9,"value":0.000125,"time":12345.6789}`,
		`{"rater":7,"object":9,"value":9.999999999999e-5,"time":4e22}`,
		`  { "rater" : 1 , "object" : 2 , "value" : 0.25 , "time" : 8 }  `,
		`{}`,
		`{"time":1.5,"value":0.75,"object":3,"rater":2}`,
		// Lines the fast path must either bail on or agree about:
		`{"rater":1,"object":1,"value":0.12345678901234567,"time":1}`, // 17 digits
		`{"rater":1,"object":1,"value":1e-30,"time":1}`,               // exp out of exact range
		`{"rater":1,"object":1,"value":5e22,"time":1}`,
		`{"rater":1,"object":1,"value":0.1,"time":1.7976931348623157e308}`,
	}
	for _, line := range lines {
		fast, ok := parseRatingLine([]byte(line))
		var strict RatingPayload
		strictErr := decodeStrict([]byte(line), &strict)
		if !ok {
			continue // bailed to the fallback: always correct
		}
		if strictErr != nil {
			t.Fatalf("fast path accepted %q but strict decoder rejects: %v", line, strictErr)
		}
		if fast.Rater != strict.Rater || fast.Object != strict.Object ||
			math.Float64bits(fast.Value) != math.Float64bits(strict.Value) ||
			math.Float64bits(fast.Time) != math.Float64bits(strict.Time) {
			t.Fatalf("line %q: fast %+v != strict %+v", line, fast, strict)
		}
	}
}

// TestParseRatingLineRejects ensures clearly invalid shapes never pass
// the fast path as accepted values.
func TestParseRatingLineRejects(t *testing.T) {
	for _, line := range []string{
		``,
		`[]`,
		`{"rater":01,"object":1,"value":0.5,"time":1}`,
		`{"rater":1,"object":1,"value":00.5,"time":1}`,
		`{"rater":1,"object":1,"value":.5,"time":1}`,
		`{"rater":1,"object":1,"value":0.5,"time":1} trailing`,
		`{"rater":1,"object":1,"value":0.5,"time":1`,
		`{"unknown":1}`,
		`{"rater":"1","object":1,"value":0.5,"time":1}`,
		`{"rater":1.5,"object":1,"value":0.5,"time":1}`,
		`{"rater":1e2,"object":1,"value":0.5,"time":1}`,
		`{"rater":9223372036854775808,"object":1,"value":0.5,"time":1}`,
	} {
		if p, ok := parseRatingLine([]byte(line)); ok {
			// Acceptance is only a bug if the strict decoder disagrees.
			var strict RatingPayload
			if err := decodeStrict([]byte(line), &strict); err != nil {
				t.Fatalf("fast path accepted %q as %+v; strict decoder: %v", line, p, err)
			}
		}
	}
}

// TestStreamHotLoopAllocations pins the zero-steady-state-allocation
// claim: parsing and batching an already-buffered line must not
// allocate.
func TestStreamHotLoopAllocations(t *testing.T) {
	line := []byte(`{"rater":17,"object":4,"value":0.875,"time":123.25}`)
	batch := make([]rating.Rating, 0, 1024)
	allocs := testing.AllocsPerRun(1000, func() {
		p, ok := parseRatingLine(line)
		if !ok {
			t.Fatal("fast path bailed")
		}
		batch = append(batch[:0], p.Rating())
	})
	if allocs != 0 {
		t.Fatalf("hot loop allocates %.1f per line", allocs)
	}
}
