package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/randx"
	"repro/internal/rating"
	"repro/internal/telemetry"
)

// streamBody renders payloads as NDJSON.
func streamBody(payloads []RatingPayload) string {
	var b strings.Builder
	enc := json.NewEncoder(&b)
	for _, p := range payloads {
		_ = enc.Encode(p)
	}
	return b.String()
}

func seededPayloads(n int, seed int64) []RatingPayload {
	rng := randx.New(seed)
	ps := make([]RatingPayload, n)
	for i := range ps {
		ps[i] = RatingPayload{
			Rater:  rng.Intn(40) + 1,
			Object: rng.Intn(8),
			Value:  math.Round(rng.Float64()*1000) / 1000,
			Time:   float64(i) / 10,
		}
	}
	return ps
}

func TestStreamAcceptsAll(t *testing.T) {
	_, ts, client := newTestServer(t)
	_ = ts
	payloads := seededPayloads(1000, 7)
	sum, rejects, err := client.SubmitStream(context.Background(), strings.NewReader(streamBody(payloads)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rejects) != 0 {
		t.Fatalf("rejects = %v", rejects)
	}
	if sum.Accepted != 1000 || sum.Rejected != 0 || sum.Lines != 1000 {
		t.Fatalf("summary = %+v", sum)
	}
}

// TestStreamConformance proves the streaming path leaves the backend in
// the exact state the unary path does: same ratings in, bit-identical
// aggregates, trust values, and malicious list out.
func TestStreamConformance(t *testing.T) {
	payloads := seededPayloads(2000, 42)

	_, _, unary := newTestServer(t)
	_, _, stream := newTestServer(t)
	ctx := context.Background()

	if _, err := unary.Submit(ctx, payloads); err != nil {
		t.Fatal(err)
	}
	sum, _, err := stream.SubmitStream(ctx, strings.NewReader(streamBody(payloads)))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Accepted != len(payloads) {
		t.Fatalf("stream accepted %d of %d", sum.Accepted, len(payloads))
	}

	if _, err := unary.Process(ctx, 0, 300); err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Process(ctx, 0, 300); err != nil {
		t.Fatal(err)
	}

	for obj := 0; obj < 8; obj++ {
		a, errA := unary.Aggregate(ctx, obj)
		b, errB := stream.Aggregate(ctx, obj)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("object %d: unary err %v, stream err %v", obj, errA, errB)
		}
		if errA != nil {
			continue
		}
		if a != b || math.Float64bits(a.Value) != math.Float64bits(b.Value) {
			t.Fatalf("object %d: unary %+v != stream %+v", obj, a, b)
		}
	}
	for rater := 1; rater <= 40; rater++ {
		a, _ := unary.Trust(ctx, rater)
		b, _ := stream.Trust(ctx, rater)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("rater %d: trust %g != %g", rater, a, b)
		}
	}
	ma, _ := unary.Malicious(ctx)
	mb, _ := stream.Malicious(ctx)
	if fmt.Sprint(ma) != fmt.Sprint(mb) {
		t.Fatalf("malicious: unary %v != stream %v", ma, mb)
	}
}

func TestStreamRejectsBadLinesIndividually(t *testing.T) {
	srv, _, client := newTestServer(t)
	body := strings.Join([]string{
		`{"rater":1,"object":1,"value":0.5,"time":1}`,
		`{"rater":2,"object":1,"value":7,"time":1}`, // out of range
		`not json at all`,
		``, // blank: not a rating, but still a counted physical line
		`{"rater":3,"object":1,"value":0.25,"time":2}`,
		`{"rater":4,"object":1,"value":0.5,"time":3,"extra":true}`, // unknown field
	}, "\n")
	sum, rejects, err := client.SubmitStream(context.Background(), strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Lines != 6 || sum.Accepted != 2 || sum.Rejected != 3 {
		t.Fatalf("summary = %+v", sum)
	}
	wantLines := []int{2, 3, 6}
	if len(rejects) != len(wantLines) {
		t.Fatalf("rejects = %+v", rejects)
	}
	for i, re := range rejects {
		if re.Line != wantLines[i] || re.Code != api.CodeBadRequest || re.Message == "" {
			t.Fatalf("reject %d = %+v", i, re)
		}
	}
	if got := srv.System().Len(); got != 2 {
		t.Fatalf("backend holds %d ratings, want 2", got)
	}
}

func TestStreamCRLFAndTrailingNewline(t *testing.T) {
	_, _, client := newTestServer(t)
	body := "{\"rater\":1,\"object\":1,\"value\":0.5,\"time\":1}\r\n" +
		"{\"rater\":2,\"object\":1,\"value\":0.6,\"time\":2}\n\n"
	sum, rejects, err := client.SubmitStream(context.Background(), strings.NewReader(body))
	if err != nil || len(rejects) != 0 {
		t.Fatalf("err=%v rejects=%v", err, rejects)
	}
	// Lines counts physical framing: two ratings plus the blank line
	// the trailing "\n\n" produces.
	if sum.Accepted != 2 || sum.Lines != 3 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestStreamOversizeLineTerminates(t *testing.T) {
	_, _, client := newTestServer(t)
	body := `{"rater":1,"object":1,"value":0.5,"time":1}` + "\n" +
		`{"rater":2,"object":1,"value":0.5,"padding":"` + strings.Repeat("x", maxStreamLineBytes+16) + `"}`
	sum, _, err := client.SubmitStream(context.Background(), strings.NewReader(body))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeBadRequest {
		t.Fatalf("err = %v", err)
	}
	// The valid first line was already examined; the summary says so.
	if sum.Lines != 1 || sum.Code != api.CodeBadRequest {
		t.Fatalf("summary = %+v", sum)
	}
}

// asyncJournal implements Journal + AsyncSubmitter and checks the
// caller honors the "slice reusable after return" contract by stashing
// a fingerprint of every batch at enqueue time.
type asyncJournal struct {
	sys Backend

	mu      sync.Mutex
	batches [][]rating.Rating
	waits   int
	fail    error // SubmitAsync refuses to enqueue
	waitErr error // wait applies the batch, then reports failure
}

func (j *asyncJournal) SubmitAll(rs []rating.Rating) error { return j.sys.SubmitAll(rs) }

func (j *asyncJournal) ProcessWindow(start, end float64) (core.ProcessReport, error) {
	return j.sys.ProcessWindow(start, end)
}

func (j *asyncJournal) Restore(r io.Reader) error { return j.sys.LoadSnapshot(r) }

func (j *asyncJournal) SubmitAsync(rs []rating.Rating) (func() error, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.fail != nil {
		return nil, j.fail
	}
	batch := append([]rating.Rating(nil), rs...)
	j.batches = append(j.batches, batch)
	return func() error {
		j.mu.Lock()
		j.waits++
		we := j.waitErr
		j.mu.Unlock()
		if err := j.sys.SubmitAll(batch); err != nil {
			return err
		}
		// A waitErr batch is applied anyway, simulating a multi-shard
		// flush that failed on one shard after landing on others.
		return we
	}, nil
}

func newAsyncServer(t *testing.T, j *asyncJournal, opts ...Option) (*Server, *Client) {
	t.Helper()
	srv, err := New(core.Config{Detector: detector.Config{Threshold: 0.05}},
		append([]Option{WithJournal(j)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	j.sys = srv.System()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL, ts.Client())
}

func TestStreamUsesAsyncJournal(t *testing.T) {
	j := &asyncJournal{}
	srv, client := newAsyncServer(t, j, WithStreamBatch(64))
	payloads := seededPayloads(300, 3)
	sum, _, err := client.SubmitStream(context.Background(), strings.NewReader(streamBody(payloads)))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Accepted != 300 {
		t.Fatalf("summary = %+v", sum)
	}
	j.mu.Lock()
	batches, waits := len(j.batches), j.waits
	total := 0
	for _, b := range j.batches {
		total += len(b)
	}
	j.mu.Unlock()
	if batches != (300+63)/64 || waits != batches || total != 300 {
		t.Fatalf("batches=%d waits=%d total=%d", batches, waits, total)
	}
	if srv.System().Len() != 300 {
		t.Fatalf("backend holds %d", srv.System().Len())
	}
}

func TestStreamAsyncSubmitFailureIsTerminal(t *testing.T) {
	j := &asyncJournal{fail: errors.New("wal down")}
	_, client := newAsyncServer(t, j, WithStreamBatch(8))
	payloads := seededPayloads(64, 5)
	sum, _, err := client.SubmitStream(context.Background(), strings.NewReader(streamBody(payloads)))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnavailable {
		t.Fatalf("err = %v", err)
	}
	if sum.Accepted != 0 || sum.Code != api.CodeUnavailable {
		t.Fatalf("summary = %+v", sum)
	}
}

// errAfterReader yields data, then fails — a client disconnecting
// mid-stream as the server's body reader sees it.
type errAfterReader struct {
	data []byte
	err  error
}

func (r *errAfterReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// streamDirect drives the stream endpoint through ServeHTTP with an
// arbitrary body reader and returns the parsed summary.
func streamDirect(t *testing.T, srv *Server, body io.Reader) api.StreamSummary {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/ratings:stream", body)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	var sum api.StreamSummary
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
		t.Fatalf("summary %q: %v", lines[len(lines)-1], err)
	}
	return sum
}

// primeAggregate seeds object 1, runs a window, and fills the read
// cache with its aggregate.
func primeAggregate(t *testing.T, client *Client) AggregateResponse {
	t.Helper()
	ctx := context.Background()
	seed := make([]RatingPayload, 10)
	for i := range seed {
		seed[i] = RatingPayload{Rater: i + 1, Object: 1, Value: 0.4 + 0.01*float64(i), Time: float64(i)}
	}
	if _, err := client.Submit(ctx, seed); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Process(ctx, 0, 100); err != nil {
		t.Fatal(err)
	}
	agg, err := client.Aggregate(ctx, 1) // miss: fills the cache
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

// TestStreamTerminalDrainsPendingAndInvalidatesCache pins the fix for
// abandoned async batches: when a stream dies mid-flight (here the
// body reader fails, as on a client disconnect), batches already
// enqueued via SubmitAsync still commit — so their waits must still be
// awaited and their objects' cached aggregates dropped. Before the
// fix, confirm was a no-op once terminal was set and the cache served
// the pre-stream aggregate forever.
func TestStreamTerminalDrainsPendingAndInvalidatesCache(t *testing.T) {
	j := &asyncJournal{}
	srv, client := newAsyncServer(t, j, WithStreamBatch(4))
	before := primeAggregate(t, client)

	var b strings.Builder
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&b, `{"rater":%d,"object":1,"value":0.9,"time":%d}`+"\n", 50+i, 20+i)
	}
	sum := streamDirect(t, srv, &errAfterReader{data: []byte(b.String()), err: errors.New("connection reset")})
	if sum.Code != api.CodeUnavailable {
		t.Fatalf("summary = %+v", sum)
	}
	// Both batches were enqueued before the cut; both must have been
	// awaited and counted.
	j.mu.Lock()
	batches, waits := len(j.batches), j.waits
	j.mu.Unlock()
	if batches != 2 || waits != 2 || sum.Accepted != 8 {
		t.Fatalf("batches=%d waits=%d summary=%+v", batches, waits, sum)
	}

	// The served aggregate must be the backend's truth, not the cached
	// pre-stream answer.
	requireServedMatchesBackend(t, srv, client, before)
}

// requireServedMatchesBackend asserts the HTTP-served aggregate of
// object 1 is bit-identical to the backend's recompute AND that the
// recompute actually differs from the pre-stream cached answer (so
// the equality is not vacuous: a stale cache would serve `before`).
func requireServedMatchesBackend(t *testing.T, srv *Server, client *Client, before AggregateResponse) {
	t.Helper()
	after, err := client.Aggregate(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := srv.System().Aggregate(rating.ObjectID(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(after.Value) != math.Float64bits(direct.Value) ||
		after.Used != direct.Used || after.Filtered != direct.Filtered || after.FellBack != direct.FellBack {
		t.Fatalf("served %+v, backend %+v", after, direct)
	}
	if after.Used+after.Filtered == before.Used+before.Filtered {
		t.Fatalf("aggregate unchanged by the stream (before %+v, after %+v): test proves nothing", before, after)
	}
}

// TestStreamWaitFailureStillInvalidates covers the error leg of the
// same fix: a batch whose group-commit wait fails may still have been
// applied (partially, on some shards), so its objects are invalidated
// regardless of the wait's outcome.
func TestStreamWaitFailureStillInvalidates(t *testing.T) {
	j := &asyncJournal{waitErr: errors.New("shard 2: wal torn")}
	srv, client := newAsyncServer(t, j, WithStreamBatch(4))
	before := primeAggregate(t, client)

	var b strings.Builder
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&b, `{"rater":%d,"object":1,"value":0.9,"time":%d}`+"\n", 70+i, 30+i)
	}
	sum := streamDirect(t, srv, strings.NewReader(b.String()))
	if sum.Code != api.CodeUnavailable || sum.Accepted != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	requireServedMatchesBackend(t, srv, client, before)
}

// TestStreamShedsPerBatchWhenOverloaded: with the limiter saturated, a
// stream's first flush is shed and the stream ends with an overloaded
// summary carrying the retry hint (surfaced on the client's APIError).
func TestStreamShedsPerBatchWhenOverloaded(t *testing.T) {
	srv, err := New(core.Config{Detector: detector.Config{Threshold: 0.05}},
		WithAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 0, MaxWait: 5 * time.Millisecond, RetryAfter: 3 * time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client())

	<-srv.admission.tokens // saturate the only slot deterministically
	defer func() { srv.admission.tokens <- struct{}{} }()

	body := "{\"rater\":1,\"object\":1,\"value\":0.5,\"time\":1}\n"
	sum, _, err := client.SubmitStream(context.Background(), strings.NewReader(body))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeOverloaded {
		t.Fatalf("err = %v", err)
	}
	if apiErr.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter = %v", apiErr.RetryAfter)
	}
	if sum.Code != api.CodeOverloaded || sum.RetryAfter != 3 || sum.Accepted != 0 {
		t.Fatalf("summary = %+v", sum)
	}
}

// TestStreamAdmissionPerBatchNotPerRequest: under a single-slot
// limiter a multi-batch async stream still completes — each batch
// takes and returns the token — and every token is back in the
// limiter afterwards. A stream-lifetime token would deadlock here
// (batch 2 waiting on the token batch 1's flush still holds).
func TestStreamAdmissionPerBatchNotPerRequest(t *testing.T) {
	j := &asyncJournal{}
	srv, client := newAsyncServer(t, j,
		WithStreamBatch(8),
		WithAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1, MaxWait: time.Second}))
	payloads := seededPayloads(64, 11)
	sum, _, err := client.SubmitStream(context.Background(), strings.NewReader(streamBody(payloads)))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Accepted != 64 {
		t.Fatalf("summary = %+v", sum)
	}
	j.mu.Lock()
	batches, waits := len(j.batches), j.waits
	j.mu.Unlock()
	if batches != 8 || waits != 8 {
		t.Fatalf("batches=%d waits=%d", batches, waits)
	}
	if f := srv.admission.inflightCount(); f != 0 {
		t.Fatalf("inflight %d after stream", f)
	}
}

// slowLineReader emits one NDJSON line per interval, so the whole
// stream takes far longer than the server's per-request timeout while
// every individual read stays prompt.
type slowLineReader struct {
	lines    []string
	interval time.Duration
}

func (r *slowLineReader) Read(p []byte) (int, error) {
	if len(r.lines) == 0 {
		return 0, io.EOF
	}
	time.Sleep(r.interval)
	line := r.lines[0] + "\n"
	r.lines = r.lines[1:]
	return copy(p, line), nil
}

// TestStreamOutlivesRequestTimeout: the stream route is exempt from
// the whole-request timeout (it is bounded per read instead), so a
// bulk ingest taking several times the budget still completes with a
// summary instead of being cut to the TimeoutHandler's static 503.
// The test runs the full production chain — telemetry's statusWriter
// wrapper plus connection-level Read/WriteTimeout like the daemon's —
// so it also pins that the per-read deadline override reaches the
// real connection through the middleware wrappers.
func TestStreamOutlivesRequestTimeout(t *testing.T) {
	srv, err := New(core.Config{Detector: detector.Config{Threshold: 0.05}},
		WithRequestTimeout(300*time.Millisecond),
		WithTelemetry(telemetry.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(srv)
	ts.Config.ReadTimeout = 100 * time.Millisecond
	ts.Config.WriteTimeout = 100 * time.Millisecond
	ts.Start()
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client())

	lines := make([]string, 8)
	for i := range lines {
		lines[i] = fmt.Sprintf(`{"rater":%d,"object":1,"value":0.5,"time":%d}`, i+1, i)
	}
	// 8 lines at 20ms apart ≈ 160ms of body: past both the 100ms
	// connection deadlines and half the 300ms request budget, while
	// each individual read stays well inside the idle bound.
	sum, rejects, err := client.SubmitStream(context.Background(),
		&slowLineReader{lines: lines, interval: 20 * time.Millisecond})
	if err != nil || len(rejects) != 0 {
		t.Fatalf("err=%v rejects=%v", err, rejects)
	}
	if sum.Accepted != 8 || sum.Lines != 8 || sum.Code != "" {
		t.Fatalf("summary = %+v", sum)
	}
}

// TestParseRatingLineMatchesStrictDecoder cross-checks the fast path
// against the strict encoding/json decoder: whenever the fast path
// claims a line, the strict decoder must accept it too and every field
// must match bit-for-bit.
func TestParseRatingLineMatchesStrictDecoder(t *testing.T) {
	lines := []string{
		`{"rater":1,"object":2,"value":0.5,"time":3}`,
		`{"rater":-4,"object":0,"value":0.125,"time":0.5}`,
		`{"value":0.1,"time":0.2}`,
		`{"rater":7,"object":9,"value":1,"time":1e3}`,
		`{"rater":7,"object":9,"value":0.333,"time":2.5E2}`,
		`{"rater":7,"object":9,"value":1e-3,"time":-0}`,
		`{"rater":7,"object":9,"value":0.000125,"time":12345.6789}`,
		`{"rater":7,"object":9,"value":9.999999999999e-5,"time":4e22}`,
		`  { "rater" : 1 , "object" : 2 , "value" : 0.25 , "time" : 8 }  `,
		`{}`,
		`{"time":1.5,"value":0.75,"object":3,"rater":2}`,
		// Lines the fast path must either bail on or agree about:
		`{"rater":1,"object":1,"value":0.12345678901234567,"time":1}`, // 17 digits
		`{"rater":1,"object":1,"value":1e-30,"time":1}`,               // exp out of exact range
		`{"rater":1,"object":1,"value":5e22,"time":1}`,
		`{"rater":1,"object":1,"value":0.1,"time":1.7976931348623157e308}`,
	}
	for _, line := range lines {
		fast, ok := parseRatingLine([]byte(line))
		var strict RatingPayload
		strictErr := decodeStrict([]byte(line), &strict)
		if !ok {
			continue // bailed to the fallback: always correct
		}
		if strictErr != nil {
			t.Fatalf("fast path accepted %q but strict decoder rejects: %v", line, strictErr)
		}
		if fast.Rater != strict.Rater || fast.Object != strict.Object ||
			math.Float64bits(fast.Value) != math.Float64bits(strict.Value) ||
			math.Float64bits(fast.Time) != math.Float64bits(strict.Time) {
			t.Fatalf("line %q: fast %+v != strict %+v", line, fast, strict)
		}
	}
}

// TestParseRatingLineRejects ensures clearly invalid shapes never pass
// the fast path as accepted values.
func TestParseRatingLineRejects(t *testing.T) {
	for _, line := range []string{
		``,
		`[]`,
		`{"rater":01,"object":1,"value":0.5,"time":1}`,
		`{"rater":1,"object":1,"value":00.5,"time":1}`,
		`{"rater":1,"object":1,"value":.5,"time":1}`,
		`{"rater":1,"object":1,"value":0.5,"time":1} trailing`,
		`{"rater":1,"object":1,"value":0.5,"time":1`,
		`{"unknown":1}`,
		`{"rater":"1","object":1,"value":0.5,"time":1}`,
		`{"rater":1.5,"object":1,"value":0.5,"time":1}`,
		`{"rater":1e2,"object":1,"value":0.5,"time":1}`,
		`{"rater":9223372036854775808,"object":1,"value":0.5,"time":1}`,
	} {
		if p, ok := parseRatingLine([]byte(line)); ok {
			// Acceptance is only a bug if the strict decoder disagrees.
			var strict RatingPayload
			if err := decodeStrict([]byte(line), &strict); err != nil {
				t.Fatalf("fast path accepted %q as %+v; strict decoder: %v", line, p, err)
			}
		}
	}
}

// TestStreamHotLoopAllocations pins the zero-steady-state-allocation
// claim: parsing and batching an already-buffered line must not
// allocate.
func TestStreamHotLoopAllocations(t *testing.T) {
	line := []byte(`{"rater":17,"object":4,"value":0.875,"time":123.25}`)
	batch := make([]rating.Rating, 0, 1024)
	allocs := testing.AllocsPerRun(1000, func() {
		p, ok := parseRatingLine(line)
		if !ok {
			t.Fatal("fast path bailed")
		}
		batch = append(batch[:0], p.Rating())
	})
	if allocs != 0 {
		t.Fatalf("hot loop allocates %.1f per line", allocs)
	}
}
