package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// TestTelemetryCountsRequests drives a handful of requests through an
// instrumented server and checks the per-route counters, status
// labels, latency histograms, and idempotency-cache counters.
func TestTelemetryCountsRequests(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv, err := New(core.Config{}, WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(path, body string, requestID string) int {
		req, err := http.NewRequest("POST", ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if requestID != "" {
			req.Header.Set("X-Request-ID", requestID)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post("/v1/ratings", `[{"rater":1,"object":42,"value":0.8,"time":3.5}]`, "req-1"); code != 200 {
		t.Fatalf("submit = %d", code)
	}
	// Same request ID again: served from the idempotency cache.
	if code := post("/v1/ratings", `[{"rater":1,"object":42,"value":0.8,"time":3.5}]`, "req-1"); code != 200 {
		t.Fatalf("replayed submit = %d", code)
	}
	if code := post("/v1/ratings", `not json`, ""); code != 400 {
		t.Fatalf("bad submit = %d", code)
	}
	for i := 0; i < 3; i++ {
		resp, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`http_requests_total{route="/v1/ratings",code="200"} 2`,
		`http_requests_total{route="/v1/ratings",code="400"} 1`,
		`http_requests_total{route="/healthz",code="200"} 3`,
		`http_request_seconds_count{route="/v1/ratings"} 3`,
		"http_idempotency_hits_total 1",
		"http_idempotency_misses_total 1",
		"http_inflight_requests 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

// TestUninstrumentedServerHasNoMetrics pins the disabled path: without
// WithTelemetry the server must work and keep no metric state.
func TestUninstrumentedServerHasNoMetrics(t *testing.T) {
	srv, err := New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if srv.metrics != nil {
		t.Fatal("metrics installed without WithTelemetry")
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}
