package shard

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/rating"
)

// Alert sources: which detection path flagged the rater.
const (
	// AlertSourceStream is the online AR detector: accrued stream
	// suspicion crossed the alert threshold.
	AlertSourceStream = "stream"
	// AlertSourceWindow is authoritative Procedure 2 charging: the
	// rater's trust dropped below the malicious threshold at a
	// maintenance-window close.
	AlertSourceWindow = "window"
	// AlertSourceCollusion is the incremental collusion graph: a
	// snapshot assigned the rater suspicion mass at or above the alert
	// threshold.
	AlertSourceCollusion = "collusion"
)

// Alert is one newly-flagged rater. A rater is alerted at most once
// per source; the authoritative malicious list remains the trust
// manager's — alerts are the push-side view of it plus the online
// early warnings.
type Alert struct {
	// Seq is the alert's position in the log, ascending from 1.
	Seq uint64
	// Rater is the flagged rater.
	Rater rating.RaterID
	// Source is one of the AlertSource constants.
	Source string
	// Suspicion is the evidence level at flag time: accrued stream
	// suspicion (stream), collusion suspicion mass (collusion), or the
	// rater's post-window trust (window).
	Suspicion float64
	// FirstFlagged is the rating-clock time (days) of the evidence
	// that tripped the flag: the rating completing the suspicious
	// window (stream), the maintenance-window end (window), or the
	// newest rating time seen at snapshot (collusion).
	FirstFlagged float64
	// Wall is the wall-clock flag time.
	Wall time.Time
}

type raterObj struct {
	rater rating.RaterID
	obj   rating.ObjectID
}

type flagKey struct {
	source string
	rater  rating.RaterID
}

// AlertLog accumulates alerts and the advisory suspicion state behind
// them, and supports long-poll reads. It is safe for concurrent use.
type AlertLog struct {
	// mu guards everything below. notify is closed and replaced each
	// time an alert is appended, broadcasting to long-pollers.
	mu        sync.Mutex
	threshold float64
	metrics   *Metrics

	alerts []Alert
	notify chan struct{}

	// byRaterObj holds the AR-stream suspicion accrued per (rater,
	// object) — the order-free form, so totals can be folded in a
	// canonical order for fingerprints no matter how shard pumps
	// interleaved. totals mirrors the running per-rater sum for cheap
	// threshold checks; stream accrual is monotone, so the flag
	// decision is order-independent even though the running sum's
	// float folds are not.
	byRaterObj map[raterObj]float64
	totals     map[rating.RaterID]float64
	flagged    map[flagKey]bool
}

func newAlertLog(threshold float64, m *Metrics) *AlertLog {
	return &AlertLog{
		threshold:  threshold,
		metrics:    m,
		notify:     make(chan struct{}),
		byRaterObj: make(map[raterObj]float64),
		totals:     make(map[rating.RaterID]float64),
		flagged:    make(map[flagKey]bool),
	}
}

// appendLocked adds one alert and wakes long-pollers. Callers hold mu.
func (a *AlertLog) appendLocked(al Alert) {
	al.Seq = uint64(len(a.alerts) + 1)
	al.Wall = time.Now()
	a.alerts = append(a.alerts, al)
	close(a.notify)
	a.notify = make(chan struct{})
	a.metrics.alertEmitted(al.Source)
}

// accrueStream folds one positive AR-stream suspicion delta for
// (rater, obj) and flags the rater when its running total crosses the
// threshold.
func (a *AlertLog) accrueStream(id rating.RaterID, obj rating.ObjectID, delta, at float64) {
	a.mu.Lock()
	a.byRaterObj[raterObj{id, obj}] += delta
	a.totals[id] += delta
	k := flagKey{AlertSourceStream, id}
	if !a.flagged[k] && a.totals[id] >= a.threshold {
		a.flagged[k] = true
		a.appendLocked(Alert{
			Rater: id, Source: AlertSourceStream,
			Suspicion: a.totals[id], FirstFlagged: at,
		})
	}
	a.mu.Unlock()
}

// seedWindowFlags marks raters as already window-flagged without
// emitting alerts. EnableStreaming seeds from the recovered malicious
// list so a restarted node's flag state derives from durable trust
// state rather than starting empty — post-recovery closes then alert
// only genuinely new raters, and fingerprints match a never-crashed
// run.
func (a *AlertLog) seedWindowFlags(ids []rating.RaterID) {
	a.mu.Lock()
	for _, id := range ids {
		a.flagged[flagKey{AlertSourceWindow, id}] = true
	}
	a.mu.Unlock()
}

// flagWindow records raters newly judged malicious by a maintenance
// window that closed at end; trust carries their post-window value.
func (a *AlertLog) flagWindow(ids []rating.RaterID, trust map[rating.RaterID]float64, end float64) {
	if len(ids) == 0 {
		return
	}
	a.mu.Lock()
	for _, id := range ids {
		k := flagKey{AlertSourceWindow, id}
		if a.flagged[k] {
			continue
		}
		a.flagged[k] = true
		a.appendLocked(Alert{
			Rater: id, Source: AlertSourceWindow,
			Suspicion: trust[id], FirstFlagged: end,
		})
	}
	a.mu.Unlock()
}

// flagCollusion records raters whose collusion suspicion mass reached
// the threshold in an incremental snapshot taken with newest rating
// time at.
func (a *AlertLog) flagCollusion(susp map[rating.RaterID]float64, at float64) {
	if len(susp) == 0 {
		return
	}
	ids := make([]rating.RaterID, 0, len(susp))
	for id, s := range susp {
		if s >= a.threshold {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	a.mu.Lock()
	for _, id := range ids {
		k := flagKey{AlertSourceCollusion, id}
		if a.flagged[k] {
			continue
		}
		a.flagged[k] = true
		a.appendLocked(Alert{
			Rater: id, Source: AlertSourceCollusion,
			Suspicion: susp[id], FirstFlagged: at,
		})
	}
	a.mu.Unlock()
}

// Alerts returns the alerts with Seq > since, plus the log's current
// tail sequence (pass it back as since to resume).
func (a *AlertLog) Alerts(since uint64) ([]Alert, uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sliceLocked(since)
}

func (a *AlertLog) sliceLocked(since uint64) ([]Alert, uint64) {
	next := uint64(len(a.alerts))
	if since >= next {
		return nil, next
	}
	out := make([]Alert, next-since)
	copy(out, a.alerts[since:])
	return out, next
}

// WaitAlerts is the long-poll read: it returns immediately when alerts
// newer than since exist, otherwise blocks up to wait (or until ctx is
// done) for one to arrive. A nil slice with the unchanged tail means
// the poll timed out.
func (a *AlertLog) WaitAlerts(ctx context.Context, since uint64, wait time.Duration) ([]Alert, uint64) {
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		a.mu.Lock()
		out, next := a.sliceLocked(since)
		ch := a.notify
		a.mu.Unlock()
		if len(out) > 0 {
			return out, next
		}
		select {
		case <-ch:
		case <-deadline.C:
			return nil, next
		case <-ctx.Done():
			return nil, next
		}
	}
}
