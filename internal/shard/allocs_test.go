//go:build !race

// The allocation budget is measured only in non-race builds: the race
// runtime instruments allocations and would make the counts
// meaningless. `make ci` runs the plain test pass, so the pin still
// gates every change.

package shard_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rating"
	"repro/internal/shard"
)

// TestSubmitPathAllocsPerRating pins the whole submit path — Submit →
// ring publish → worker drain → Engine.SubmitShard → Store merge — to
// zero allocations per rating in steady state. Everything on the path
// is pooled (submissions, ring slots, worker batches, store sort
// scratch), so the only allocations left are the amortized growth of
// per-object rating slices; the threshold leaves room for exactly
// that and nothing more. A change that adds even one real allocation
// per rating lands at ≥1.0 and fails loudly.
func TestSubmitPathAllocsPerRating(t *testing.T) {
	const (
		shards    = 4
		perShard  = 64
		batchSize = perShard
		objsPer   = 12
		total     = shards * perShard
	)
	e, err := shard.NewEngine(core.Config{}, shards)
	if err != nil {
		t.Fatal(err)
	}
	router, err := shard.NewRouter(shard.RouterConfig{
		Shards:    shards,
		BatchSize: batchSize,
		Interval:  -1, // deterministic: flushes only on size
		Flush:     e.SubmitShard,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	// Pick objsPer objects per shard so every submission delivers
	// exactly batchSize ratings to each shard and flushes are
	// deterministic with the ticker off.
	objs := make([][]rating.ObjectID, shards)
	picked := 0
	for obj := 0; picked < shards*objsPer; obj++ {
		s := shard.ShardFor(rating.ObjectID(obj), shards)
		if len(objs[s]) < objsPer {
			objs[s] = append(objs[s], rating.ObjectID(obj))
			picked++
		}
	}

	rs := make([]rating.Rating, total)
	tick := 0.0
	fill := func() {
		k := 0
		for s := 0; s < shards; s++ {
			for i := 0; i < perShard; i++ {
				tick += 1e-4
				rs[k] = rating.Rating{
					Rater:  rating.RaterID(k % 17),
					Object: objs[s][i%objsPer],
					Value:  0.5,
					Time:   tick,
				}
				k++
			}
		}
	}

	// Warm the pools, rings, worker batches and store slices.
	for i := 0; i < 50; i++ {
		fill()
		if err := router.Submit(rs); err != nil {
			t.Fatal(err)
		}
	}

	avg := testing.AllocsPerRun(100, func() {
		fill()
		if err := router.Submit(rs); err != nil {
			t.Fatal(err)
		}
	})
	perRating := avg / total
	t.Logf("submit path: %.2f allocs/batch of %d = %.4f allocs/rating", avg, total, perRating)
	if perRating > 0.03 {
		t.Fatalf("submit path allocates %.4f/rating (%.1f/batch); steady state must be ~0",
			perRating, avg)
	}
}
