package shard_test

import (
	"bytes"
	"testing"

	"repro/internal/collusion"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/shard"
	"repro/internal/shard/shardtest"
)

// The conformance contract: replaying an identical seeded workload
// through 1, 2, 4 and 8 shard engines produces byte-identical traces
// — every per-window observation, trust record, detector verdict and
// aggregate — and all of them match the single-threaded core.System
// oracle.
func TestShardCountInvariance(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		w := shardtest.Workload{Seed: seed}

		oracle, err := core.NewSystem(core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := shardtest.Run(oracle, w)
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}

		for _, shards := range []int{1, 2, 4, 8} {
			e, err := shard.NewEngine(core.Config{}, shards)
			if err != nil {
				t.Fatal(err)
			}
			got, err := shardtest.Run(e, w)
			if err != nil {
				t.Fatalf("seed %d shards %d: %v", seed, shards, err)
			}
			if got != want {
				t.Fatalf("seed %d: %d-shard trace diverges from oracle:\n%s",
					seed, shards, firstDiff(want, got))
			}
		}
	}
}

// The same contract with the window-level detectors switched on: the
// collusion graph and the iterative filter run over the whole window's
// accepted ratings, gathered across shards, so they are the natural
// place for a shard-count dependence to sneak in. Traces must stay
// byte-identical to the core.System oracle at 1, 2, 4 and 8 shards.
func TestShardAuxDetectorInvariance(t *testing.T) {
	cfg := func() core.Config {
		return core.Config{
			Collusion: &collusion.Config{MinSimilarity: 0.6, MinCoRatings: 2, MinGroupSize: 2},
			Iterative: &detector.IterativeConfig{},
		}
	}
	for _, seed := range []int64{5, 21} {
		w := shardtest.Workload{Seed: seed}

		oracle, err := core.NewSystem(cfg())
		if err != nil {
			t.Fatal(err)
		}
		want, err := shardtest.Run(oracle, w)
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}

		for _, shards := range []int{1, 2, 4, 8} {
			e, err := shard.NewEngine(cfg(), shards)
			if err != nil {
				t.Fatal(err)
			}
			got, err := shardtest.Run(e, w)
			if err != nil {
				t.Fatalf("seed %d shards %d: %v", seed, shards, err)
			}
			if got != want {
				t.Fatalf("seed %d: %d-shard trace with aux detectors diverges:\n%s",
					seed, shards, firstDiff(want, got))
			}
		}
	}
}

// Workers must not change results either: the sharded scan fans out
// per object exactly like core.System's.
func TestShardWorkerInvariance(t *testing.T) {
	w := shardtest.Workload{Seed: 3}
	base, err := shard.NewEngine(core.Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := shardtest.Run(base, w)
	if err != nil {
		t.Fatal(err)
	}
	par, err := shard.NewEngine(core.Config{Workers: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := shardtest.Run(par, w)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("worker count changed the trace:\n%s", firstDiff(want, got))
	}
}

// Global snapshots round-trip across shard counts: a 4-shard engine's
// snapshot restores into a 2-shard engine with an identical
// fingerprint.
func TestSnapshotAcrossShardCounts(t *testing.T) {
	w := shardtest.Workload{Seed: 11, Months: 2, PerMonth: 200}
	src, err := shard.NewEngine(core.Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shardtest.Run(src, w); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst, err := shard.NewEngine(core.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := shardtest.Fingerprint(src, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := shardtest.Fingerprint(dst, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("snapshot fingerprint diverges:\n%s", firstDiff(want, got))
	}
}

// firstDiff renders the first line where two traces diverge, with a
// little context — full traces are thousands of lines.
func firstDiff(want, got string) string {
	w := bytes.Split([]byte(want), []byte("\n"))
	g := bytes.Split([]byte(got), []byte("\n"))
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(w[i], g[i]) {
			return "line " + itoa(i) + ":\nwant: " + string(w[i]) + "\ngot:  " + string(g[i])
		}
	}
	return "traces differ in length: want " + itoa(len(w)) + " lines, got " + itoa(len(g))
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
