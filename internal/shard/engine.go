package shard

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/parallel"
	"repro/internal/rating"
	"repro/internal/trust"
)

// Engine is the sharded counterpart of core.System: per-object state
// (the rating store) is partitioned across N shards, each behind its
// own mutex, while the trust manager stays global behind a
// reader-writer lock (raters span shards). All per-object arithmetic
// runs through the same core.Pipeline a single-shard System uses, and
// maintenance windows fold shard evidence in ascending object order —
// the canonical order a System charges in — so trust records,
// aggregates and detector verdicts are bit-identical for any shard
// count.
//
// Locking: there is no engine-wide lock on the ingest path. The
// states slice is immutable after construction — a snapshot pointer
// readers load without coordination — and each shard's store is
// guarded only by that shard's mutex (the store pointer itself swaps
// only under it, in LoadSnapshot). Cross-shard operations that need a
// frozen view (ProcessWindow, View, LoadSnapshot) take every shard
// lock in ascending index order, so a window still sees a consistent
// cross-shard state while distinct shards ingest fully in parallel
// the rest of the time. Per-shard rating counts are mirrored in
// atomic counters so Len/ShardLen (stats, telemetry) never touch a
// shard lock while ingest runs.
type Engine struct {
	cfg  core.Config
	pipe *core.Pipeline

	states []*shardState // immutable after NewEngine

	trustMu sync.RWMutex
	manager *trust.Manager
	// lastWindowEnd is the highest window end ProcessWindow has applied
	// (guarded by trustMu). Shard snapshots persist it so recovery can
	// hand EnableStreaming a ResumeAfter that never re-fires a window
	// whose charge is already durable.
	lastWindowEnd float64

	// streaming, when set, is the online detection path (see
	// EnableStreaming). Published once under all shard locks; the
	// submit path does a single atomic load.
	streaming atomic.Pointer[Streaming]

	metrics *Metrics
}

type shardState struct {
	mu    sync.Mutex
	store *rating.Store
	count atomic.Int64 // mirrors store.Len() for lock-free reads
}

// NewEngine builds an engine with the given shard count. The same
// configuration defaulting and validation as core.NewSystem applies.
func NewEngine(cfg core.Config, shards int) (*Engine, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d", shards)
	}
	pipe, err := core.NewPipeline(cfg)
	if err != nil {
		return nil, err
	}
	cfg = pipe.Config()
	manager, err := trust.NewManager(cfg.Trust)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	states := make([]*shardState, shards)
	for i := range states {
		states[i] = &shardState{store: rating.NewStore()}
	}
	return &Engine{cfg: cfg, pipe: pipe, states: states, manager: manager}, nil
}

// SetMetrics attaches per-shard telemetry; nil disables it. Call
// before serving traffic.
func (e *Engine) SetMetrics(m *Metrics) { e.metrics = m }

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.states) }

// ShardFor returns the shard an object routes to.
func (e *Engine) ShardFor(obj rating.ObjectID) int { return ShardFor(obj, len(e.states)) }

// Submit records one raw rating in its object's shard.
func (e *Engine) Submit(r rating.Rating) error {
	return e.SubmitShard(e.ShardFor(r.Object), []rating.Rating{r})
}

// SubmitAll splits the batch by object shard and applies each group
// with one merge pass per shard. Validation is all-or-nothing per
// shard group; a rejected group leaves other shards' groups applied
// (callers wanting atomicity validate upfront, as the Router does).
func (e *Engine) SubmitAll(rs []rating.Rating) error {
	if len(rs) == 0 {
		return nil
	}
	n := len(e.states)
	groups := make(map[int][]rating.Rating, n)
	for _, r := range rs {
		s := ShardFor(r.Object, n)
		groups[s] = append(groups[s], r)
	}
	shards := make([]int, 0, len(groups))
	for s := range groups {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	for _, s := range shards {
		if err := e.SubmitShard(s, groups[s]); err != nil {
			return err
		}
	}
	return nil
}

// SubmitShard applies one shard's batch with a single merge pass. All
// ratings must route to shard i; misrouted or malformed ratings are
// rejected before anything is applied (recovery relies on placement
// being a pure function of the object ID). Validation and the
// placement check run fused in one scan of the batch — the only
// pre-pass on the hot path — and the store merge skips revalidation.
func (e *Engine) SubmitShard(i int, rs []rating.Rating) error {
	if i < 0 || i >= len(e.states) {
		return fmt.Errorf("shard: shard %d of %d", i, len(e.states))
	}
	n := len(e.states)
	for k, r := range rs {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("shard: rating %d: %w", k, err)
		}
		if want := ShardFor(r.Object, n); want != i {
			return fmt.Errorf("shard: object %d routes to shard %d, not %d", r.Object, want, i)
		}
	}
	st := e.states[i]
	st.mu.Lock()
	st.store.AddBatchValidated(rs)
	st.count.Store(int64(st.store.Len()))
	// The streaming observe stays inside the shard lock so the pump's
	// batch order matches the store's tie order; it only copies the
	// batch and does a non-blocking enqueue, so the ack path never
	// waits on detection.
	if sp := e.streaming.Load(); sp != nil {
		sp.observe(i, rs)
	}
	st.mu.Unlock()
	e.metrics.ingested(i, len(rs))
	return nil
}

// Len returns the total number of stored ratings across shards. It
// reads the per-shard atomic counters, so it is safe to call from
// stats and telemetry at any frequency while ingest runs without
// touching a shard lock.
func (e *Engine) Len() int {
	total := int64(0)
	for _, st := range e.states {
		total += st.count.Load()
	}
	return int(total)
}

// ShardLen returns shard i's rating count (lock-free; see Len).
func (e *Engine) ShardLen(i int) int {
	if i < 0 || i >= len(e.states) {
		return 0
	}
	return int(e.states[i].count.Load())
}

// lockAll acquires every shard lock in ascending index order — the
// canonical order every multi-shard locker uses, so cross-shard
// freezes never deadlock against each other.
func (e *Engine) lockAll() {
	for _, st := range e.states {
		st.mu.Lock()
	}
}

func (e *Engine) unlockAll() {
	for _, st := range e.states {
		st.mu.Unlock()
	}
}

// ProcessWindow runs one maintenance pass over every shard's objects
// with time in [start, end), then applies the combined Procedure 2
// evidence to the global trust manager. Objects are scanned and
// charged in ascending object ID order across all shards — exactly
// the fold a single-shard System performs — so the resulting trust
// records are bit-identical for any shard count.
func (e *Engine) ProcessWindow(start, end float64) (core.ProcessReport, error) {
	if end <= start {
		return core.ProcessReport{}, fmt.Errorf("shard: window [%g,%g)", start, end)
	}
	e.lockAll()
	defer e.unlockAll()

	var objects []rating.ObjectID
	byObject := make(map[rating.ObjectID]*shardState)
	for _, st := range e.states {
		for _, obj := range st.store.Objects() {
			objects = append(objects, obj)
			byObject[obj] = st
		}
	}
	sort.Slice(objects, func(i, j int) bool { return objects[i] < objects[j] })

	workers := e.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	scans, err := parallel.MapLocal(len(objects), workers,
		detector.NewWorkspace,
		func(i int, ws *detector.Workspace) (core.ObjectScan, error) {
			obj := objects[i]
			all, err := byObject[obj].store.ForObject(obj)
			if err != nil {
				return core.ObjectScan{}, fmt.Errorf("shard: %w", err)
			}
			return e.pipe.ScanObject(ws, obj, all, start, end)
		})
	if err != nil {
		return core.ProcessReport{}, err
	}

	report := core.ProcessReport{
		Start:        start,
		End:          end,
		Observations: make(map[rating.RaterID]trust.Observation),
	}
	for _, scan := range scans {
		if !scan.OK {
			continue
		}
		report.Objects = append(report.Objects, scan.Report)
		e.pipe.Charge(report.Observations, scan)
	}
	if err := e.pipe.ChargeWindow(report.Observations, scans); err != nil {
		return core.ProcessReport{}, err
	}

	sp := e.streaming.Load()
	var prevMal []rating.RaterID
	e.trustMu.Lock()
	if sp != nil {
		prevMal = e.manager.Malicious()
	}
	err = e.manager.UpdateBatch(report.Observations, end)
	if err == nil && end > e.lastWindowEnd {
		e.lastWindowEnd = end
	}
	var newMal []rating.RaterID
	var newTrust map[rating.RaterID]float64
	if err == nil && sp != nil {
		// Diff the malicious list so the window close pushes alerts
		// for newly-flagged raters; reads only, so the charge
		// arithmetic stays byte-identical to a non-streaming engine.
		was := make(map[rating.RaterID]bool, len(prevMal))
		for _, id := range prevMal {
			was[id] = true
		}
		for _, id := range e.manager.Malicious() {
			if !was[id] {
				newMal = append(newMal, id)
			}
		}
		if len(newMal) > 0 {
			newTrust = make(map[rating.RaterID]float64, len(newMal))
			for _, id := range newMal {
				newTrust[id] = e.manager.Trust(id)
			}
		}
	}
	e.trustMu.Unlock()
	if err != nil {
		return core.ProcessReport{}, fmt.Errorf("shard: %w", err)
	}
	if sp != nil {
		sp.sink.flagWindow(newMal, newTrust, end)
	}
	e.metrics.windowDone(len(report.Objects))
	return report, nil
}

// Aggregate returns the object's trust-enhanced aggregate.
func (e *Engine) Aggregate(obj rating.ObjectID) (core.AggregateResult, error) {
	return e.aggregate(obj, func(rating.Rating) bool { return true })
}

// AggregateWindow returns the aggregate over ratings in [start, end).
func (e *Engine) AggregateWindow(obj rating.ObjectID, start, end float64) (core.AggregateResult, error) {
	if end <= start {
		return core.AggregateResult{}, fmt.Errorf("shard: aggregate window [%g,%g)", start, end)
	}
	return e.aggregate(obj, func(r rating.Rating) bool {
		return r.Time >= start && r.Time < end
	})
}

func (e *Engine) aggregate(obj rating.ObjectID, include func(rating.Rating) bool) (core.AggregateResult, error) {
	st := e.states[e.ShardFor(obj)]
	st.mu.Lock()
	stored, err := st.store.ForObject(obj)
	st.mu.Unlock()
	if err != nil {
		return core.AggregateResult{}, fmt.Errorf("shard: %w", err)
	}
	all := make([]rating.Rating, 0, len(stored))
	for _, r := range stored {
		if include(r) {
			all = append(all, r)
		}
	}
	e.trustMu.RLock()
	defer e.trustMu.RUnlock()
	return e.pipe.AggregateRatings(obj, all, e.manager.Trust)
}

// TrustIn returns the system's current trust in a rater.
func (e *Engine) TrustIn(id rating.RaterID) float64 {
	e.trustMu.RLock()
	defer e.trustMu.RUnlock()
	return e.manager.Trust(id)
}

// TrustSnapshot returns every tracked rater's trust.
func (e *Engine) TrustSnapshot() map[rating.RaterID]float64 {
	e.trustMu.RLock()
	defer e.trustMu.RUnlock()
	return e.manager.Snapshot()
}

// TrustDistribution bins every tracked rater's trust into the given
// sorted upper bounds (cumulative counts; see trust.Manager).
func (e *Engine) TrustDistribution(bounds []float64) []int {
	e.trustMu.RLock()
	defer e.trustMu.RUnlock()
	return e.manager.TrustDistribution(bounds)
}

// RaterCount returns the number of tracked trust records.
func (e *Engine) RaterCount() int {
	e.trustMu.RLock()
	defer e.trustMu.RUnlock()
	return e.manager.Len()
}

// MaliciousRaters returns raters below the malicious-trust threshold.
func (e *Engine) MaliciousRaters() []rating.RaterID {
	e.trustMu.RLock()
	defer e.trustMu.RUnlock()
	return e.manager.Malicious()
}

// RecordRecommendations computes indirect trust from recommendations.
func (e *Engine) RecordRecommendations(about rating.RaterID, recs []trust.Recommendation) (float64, error) {
	e.trustMu.RLock()
	defer e.trustMu.RUnlock()
	v, err := e.manager.IndirectTrust(about, recs)
	if err != nil {
		return 0, fmt.Errorf("shard: %w", err)
	}
	return v, nil
}

// View captures the engine's full state as a copy: every shard's
// ratings in shard order (each shard's objects in first-seen order),
// plus every trust record.
func (e *Engine) View() core.StateView {
	e.lockAll()
	defer e.unlockAll()
	return e.viewLocked()
}

func (e *Engine) viewLocked() core.StateView {
	e.trustMu.RLock()
	v := core.StateView{Records: e.manager.Records()}
	e.trustMu.RUnlock()
	for _, st := range e.states {
		appendStoreRatings(&v, st.store)
	}
	return v
}

// shardView captures one shard's ratings plus the full (global) trust
// record set — every shard snapshot is a self-sufficient carrier of
// the trust state, so recovery can take the records from whichever
// shard snapshot is newest.
func (e *Engine) shardView(i int) core.StateView {
	e.trustMu.RLock()
	v := core.StateView{Records: e.manager.Records()}
	e.trustMu.RUnlock()
	st := e.states[i]
	st.mu.Lock()
	appendStoreRatings(&v, st.store)
	st.mu.Unlock()
	return v
}

func appendStoreRatings(v *core.StateView, store *rating.Store) {
	for _, obj := range store.Objects() {
		rs, err := store.ForObject(obj)
		if err != nil {
			continue // unreachable: Objects() only lists known objects
		}
		v.Ratings = append(v.Ratings, rs...)
	}
}

// WriteSnapshot serializes the full engine state in the core snapshot
// format. The locks are held only while the state is copied; encoding
// runs outside the critical section.
func (e *Engine) WriteSnapshot(w io.Writer) error {
	return e.View().Encode(w)
}

// LoadSnapshot replaces the engine's state with a core snapshot,
// rerouting every rating to its shard under the current shard count.
// On error the previous state is preserved.
func (e *Engine) LoadSnapshot(r io.Reader) error {
	v, err := core.DecodeSnapshot(r)
	if err != nil {
		return err
	}
	stores := make([]*rating.Store, len(e.states))
	for i := range stores {
		stores[i] = rating.NewStore()
	}
	for i, sr := range v.Ratings {
		if err := stores[ShardFor(sr.Object, len(stores))].Add(sr); err != nil {
			return fmt.Errorf("shard: snapshot rating %d: %w", i, err)
		}
	}
	manager, err := trust.NewManager(e.cfg.Trust)
	if err != nil {
		return fmt.Errorf("shard: snapshot: %w", err)
	}
	if err := manager.Restore(v.Records); err != nil {
		return fmt.Errorf("shard: snapshot: %w", err)
	}

	e.lockAll()
	defer e.unlockAll()
	for i := range e.states {
		e.states[i].store = stores[i]
		e.states[i].count.Store(int64(stores[i].Len()))
	}
	e.trustMu.Lock()
	e.manager = manager
	// A core snapshot carries no window history; recovery (Recover)
	// restores the durable high-water mark right after seeding.
	e.lastWindowEnd = 0
	e.trustMu.Unlock()
	return nil
}

// LastWindowEnd reports the highest maintenance-window end applied to
// this engine (including windows restored by Recover). Zero means no
// window has ever run.
func (e *Engine) LastWindowEnd() float64 {
	e.trustMu.RLock()
	defer e.trustMu.RUnlock()
	return e.lastWindowEnd
}

// setLastWindowEnd force-sets the window high-water mark; recovery
// uses it after snapshot seeding.
func (e *Engine) setLastWindowEnd(end float64) {
	e.trustMu.Lock()
	if end > e.lastWindowEnd {
		e.lastWindowEnd = end
	}
	e.trustMu.Unlock()
}
