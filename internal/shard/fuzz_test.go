package shard

import (
	"hash/fnv"
	"testing"

	"repro/internal/rating"
)

// FuzzShardIndex feeds arbitrary keys and shard counts to the
// router's placement hash. The routing invariants everything else is
// built on: never panic, always land in [0, n), be a pure function of
// the inputs (recovery replays ratings into the shard that logged
// them), and agree with ShardFor on 8-byte little-endian object keys.
func FuzzShardIndex(f *testing.F) {
	f.Add([]byte(nil), 1)
	f.Add([]byte{0}, 1)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, 4)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, 8)
	f.Add([]byte("object-123"), 3)
	f.Add([]byte{42, 0, 0, 0, 0, 0, 0, 0}, 7)

	f.Fuzz(func(t *testing.T, key []byte, n int) {
		if n <= 0 {
			// Non-positive shard counts are a constructor-rejected
			// programming error; the contract is a panic, not a wrap.
			defer func() {
				if recover() == nil {
					t.Fatalf("Index(%x, %d) did not panic", key, n)
				}
			}()
			Index(key, n)
			return
		}
		got := Index(key, n)
		if got < 0 || got >= n {
			t.Fatalf("Index(%x, %d) = %d outside [0,%d)", key, n, got, n)
		}
		if again := Index(key, n); again != got {
			t.Fatalf("Index(%x, %d) unstable: %d then %d", key, n, got, again)
		}
		// The hash must be real FNV-1a, not merely self-consistent:
		// cross-check against the standard library's implementation.
		ref := fnv.New64a()
		ref.Write(key)
		if want := int(ref.Sum64() % uint64(n)); got != want {
			t.Fatalf("Index(%x, %d) = %d, stdlib FNV-1a says %d", key, n, got, want)
		}
		// 8-byte keys are object placements: ShardFor must agree.
		if len(key) == 8 {
			var v uint64
			for i := 7; i >= 0; i-- {
				v = v<<8 | uint64(key[i])
			}
			obj := rating.ObjectID(int64(v))
			if s := ShardFor(obj, n); s != got {
				t.Fatalf("ShardFor(%d, %d) = %d, Index of its key = %d", obj, n, s, got)
			}
		}
	})
}

// The placement hash is pinned: these values are on disk (each shard
// directory holds the ratings its hash routed there), so they may
// never change across builds or platforms.
func TestShardHashPinned(t *testing.T) {
	cases := []struct {
		key  []byte
		want uint64
	}{
		{nil, 14695981039346656037},
		{[]byte{0}, 12638153115695167455},
		{[]byte("a"), 12638187200555641996},
		{[]byte("shard"), 7940003687735986699},
	}
	for _, c := range cases {
		if got := Hash64(c.key); got != c.want {
			t.Fatalf("Hash64(%q) = %d, want %d", c.key, got, c.want)
		}
	}
	// Placement spot checks across counts: recomputed from the pinned
	// FNV-1a parameters, not from ShardFor itself.
	for _, obj := range []rating.ObjectID{0, 1, 42, -1, 1 << 40} {
		for _, n := range []int{1, 2, 4, 8} {
			v := uint64(int64(obj))
			var key [8]byte
			for i := 0; i < 8; i++ {
				key[i] = byte(v >> (8 * i))
			}
			want := int(Hash64(key[:]) % uint64(n))
			if got := ShardFor(obj, n); got != want {
				t.Fatalf("ShardFor(%d, %d) = %d, want %d", obj, n, got, want)
			}
		}
	}
}
