package shard

import (
	"strconv"

	"repro/internal/telemetry"
)

// Metrics is the sharded engine's telemetry: per-shard ingest counters
// keyed by a "shard" label, batch-size distribution, flush outcomes
// and window counts. A nil *Metrics disables instrumentation (every
// method is nil-safe), matching the repo's other metric structs.
type Metrics struct {
	// RatingsTotal counts ratings applied per shard.
	RatingsTotal *telemetry.CounterVec
	// BatchesTotal counts router flushes per shard.
	BatchesTotal *telemetry.CounterVec
	// FlushErrorsTotal counts failed router flushes per shard.
	FlushErrorsTotal *telemetry.CounterVec
	// BatchSize observes the number of ratings per flushed batch.
	BatchSize *telemetry.HistogramVec
	// WindowsTotal counts maintenance windows processed.
	WindowsTotal *telemetry.Counter
	// WindowObjects observes objects scanned per window.
	WindowObjects *telemetry.Histogram

	// labels[i] is the precomputed label value for shard i, so hot
	// paths don't re-format integers.
	labels []string
}

// NewMetrics registers the shard metric families for an engine with
// the given shard count.
func NewMetrics(r *telemetry.Registry, shards int) *Metrics {
	m := &Metrics{
		RatingsTotal:     r.CounterVec("shard_ratings_total", "ratings applied per shard", "shard"),
		BatchesTotal:     r.CounterVec("shard_batches_total", "router batch flushes per shard", "shard"),
		FlushErrorsTotal: r.CounterVec("shard_flush_errors_total", "failed router flushes per shard", "shard"),
		BatchSize:        r.HistogramVec("shard_batch_size", "ratings per flushed batch", []float64{1, 4, 16, 64, 256, 1024}, "shard"),
		WindowsTotal:     r.Counter("shard_windows_total", "maintenance windows processed"),
		WindowObjects:    r.Histogram("shard_window_objects", "objects scanned per maintenance window", nil),
		labels:           make([]string, shards),
	}
	for i := range m.labels {
		m.labels[i] = strconv.Itoa(i)
	}
	return m
}

func (m *Metrics) label(shard int) string {
	if shard >= 0 && shard < len(m.labels) {
		return m.labels[shard]
	}
	return strconv.Itoa(shard)
}

func (m *Metrics) ingested(shard, n int) {
	if m == nil {
		return
	}
	m.RatingsTotal.With(m.label(shard)).Add(uint64(n))
}

func (m *Metrics) flushed(shard, n int) {
	if m == nil {
		return
	}
	l := m.label(shard)
	m.BatchesTotal.With(l).Inc()
	m.BatchSize.With(l).Observe(float64(n))
}

func (m *Metrics) flushFailed(shard int) {
	if m == nil {
		return
	}
	m.FlushErrorsTotal.With(m.label(shard)).Inc()
}

func (m *Metrics) windowDone(objects int) {
	if m == nil {
		return
	}
	m.WindowsTotal.Inc()
	m.WindowObjects.Observe(float64(objects))
}
