package shard

import (
	"strconv"

	"repro/internal/telemetry"
)

// Metrics is the sharded engine's telemetry: per-shard ingest counters
// keyed by a "shard" label, batch-size distribution, flush outcomes
// and window counts. A nil *Metrics disables instrumentation (every
// method is nil-safe), matching the repo's other metric structs.
type Metrics struct {
	// RatingsTotal counts ratings applied per shard.
	RatingsTotal *telemetry.CounterVec
	// BatchesTotal counts router flushes per shard.
	BatchesTotal *telemetry.CounterVec
	// FlushErrorsTotal counts failed router flushes per shard.
	FlushErrorsTotal *telemetry.CounterVec
	// BatchSize observes the number of ratings per flushed batch.
	BatchSize *telemetry.HistogramVec
	// WindowsTotal counts maintenance windows processed.
	WindowsTotal *telemetry.Counter
	// WindowObjects observes objects scanned per window.
	WindowObjects *telemetry.Histogram
	// StreamPushedTotal counts ratings accepted into per-object
	// streams, per shard.
	StreamPushedTotal *telemetry.CounterVec
	// StreamLateTotal counts ratings the streaming path skipped for
	// arriving behind their object's stream clock, per shard.
	StreamLateTotal *telemetry.CounterVec
	// StreamShedTotal counts ratings shed because a shard's streaming
	// queue was full, per shard.
	StreamShedTotal *telemetry.CounterVec
	// AlertsTotal counts alerts emitted, by source.
	AlertsTotal *telemetry.CounterVec

	// labels[i] is the precomputed label value for shard i, so hot
	// paths don't re-format integers.
	labels []string
}

// NewMetrics registers the shard metric families for an engine with
// the given shard count.
func NewMetrics(r *telemetry.Registry, shards int) *Metrics {
	m := &Metrics{
		RatingsTotal:      r.CounterVec("shard_ratings_total", "ratings applied per shard", "shard"),
		BatchesTotal:      r.CounterVec("shard_batches_total", "router batch flushes per shard", "shard"),
		FlushErrorsTotal:  r.CounterVec("shard_flush_errors_total", "failed router flushes per shard", "shard"),
		BatchSize:         r.HistogramVec("shard_batch_size", "ratings per flushed batch", []float64{1, 4, 16, 64, 256, 1024}, "shard"),
		WindowsTotal:      r.Counter("shard_windows_total", "maintenance windows processed"),
		WindowObjects:     r.Histogram("shard_window_objects", "objects scanned per maintenance window", nil),
		StreamPushedTotal: r.CounterVec("shard_stream_pushed_total", "ratings accepted into per-object streams", "shard"),
		StreamLateTotal:   r.CounterVec("shard_stream_late_total", "ratings skipped by the streaming path as behind the stream clock", "shard"),
		StreamShedTotal:   r.CounterVec("shard_stream_shed_total", "ratings shed by full streaming queues", "shard"),
		AlertsTotal:       r.CounterVec("shard_alerts_total", "alerts emitted", "source"),
		labels:            make([]string, shards),
	}
	for i := range m.labels {
		m.labels[i] = strconv.Itoa(i)
	}
	return m
}

func (m *Metrics) label(shard int) string {
	if shard >= 0 && shard < len(m.labels) {
		return m.labels[shard]
	}
	return strconv.Itoa(shard)
}

func (m *Metrics) ingested(shard, n int) {
	if m == nil {
		return
	}
	m.RatingsTotal.With(m.label(shard)).Add(uint64(n))
}

func (m *Metrics) flushed(shard, n int) {
	if m == nil {
		return
	}
	l := m.label(shard)
	m.BatchesTotal.With(l).Inc()
	m.BatchSize.With(l).Observe(float64(n))
}

func (m *Metrics) flushFailed(shard int) {
	if m == nil {
		return
	}
	m.FlushErrorsTotal.With(m.label(shard)).Inc()
}

func (m *Metrics) streamPushed(shard, n int) {
	if m == nil {
		return
	}
	m.StreamPushedTotal.With(m.label(shard)).Add(uint64(n))
}

func (m *Metrics) streamLate(shard int) {
	if m == nil {
		return
	}
	m.StreamLateTotal.With(m.label(shard)).Inc()
}

func (m *Metrics) streamShed(shard, n int) {
	if m == nil {
		return
	}
	m.StreamShedTotal.With(m.label(shard)).Add(uint64(n))
}

func (m *Metrics) alertEmitted(source string) {
	if m == nil {
		return
	}
	m.AlertsTotal.With(source).Inc()
}

func (m *Metrics) windowDone(objects int) {
	if m == nil {
		return
	}
	m.WindowsTotal.Inc()
	m.WindowObjects.Observe(float64(objects))
}
