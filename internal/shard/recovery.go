package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/wal"
)

// shardSnapshotVersion is bumped on incompatible wrapper changes.
const shardSnapshotVersion = 1

// shardSnapshot is the on-disk envelope of one shard's snapshot: the
// shard's ratings plus the full global trust record set (every shard
// snapshot is a self-sufficient trust carrier), tagged with the shard
// layout it was written under and the last maintenance barrier folded
// into its trust records. Recovery uses BarrierSeq to pick the newest
// trust state and to skip replaying windows the snapshot already
// reflects.
type shardSnapshot struct {
	Version    int    `json:"version"`
	Shard      int    `json:"shard"`
	Shards     int    `json:"shards"`
	BarrierSeq uint64 `json:"barrierSeq"`
	// WindowEnd is the engine's maintenance-window high-water mark at
	// snapshot time (additive; absent in older snapshots). Recovery
	// restores it so streaming detection knows which auto windows are
	// already durably charged.
	WindowEnd float64         `json:"windowEnd,omitempty"`
	State     json.RawMessage `json:"state"`
}

// WriteShardSnapshot serializes shard i's state (plus the global
// trust records) as a shard snapshot with the given barrier sequence.
func WriteShardSnapshot(e *Engine, i int, barrierSeq uint64, w io.Writer) error {
	if i < 0 || i >= len(e.states) {
		return fmt.Errorf("shard: snapshot shard %d of %d", i, len(e.states))
	}
	view := e.shardView(i)
	var state bytes.Buffer
	if err := view.Encode(&state); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(shardSnapshot{
		Version:    shardSnapshotVersion,
		Shard:      i,
		Shards:     len(e.states),
		BarrierSeq: barrierSeq,
		WindowEnd:  e.LastWindowEnd(),
		State:      state.Bytes(),
	}); err != nil {
		return fmt.Errorf("shard: snapshot encode: %w", err)
	}
	return nil
}

func decodeShardSnapshot(data []byte) (shardSnapshot, core.StateView, error) {
	var snap shardSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return shardSnapshot{}, core.StateView{}, fmt.Errorf("shard: snapshot decode: %w", err)
	}
	if snap.Version != shardSnapshotVersion {
		return shardSnapshot{}, core.StateView{}, fmt.Errorf("shard: snapshot version %d", snap.Version)
	}
	view, err := core.DecodeSnapshot(bytes.NewReader(snap.State))
	if err != nil {
		return shardSnapshot{}, core.StateView{}, err
	}
	return snap, view, nil
}

// ConsistencyError reports that the per-shard WAL tails cannot be
// merged into one history: a maintenance barrier is present in some
// logs but missing, reordered or mismatched in another — damage that
// a crash cannot produce (crashes only tear the final broadcast, and
// the journal stops accepting work after a partial broadcast).
// Recovery fails loudly rather than serving trust state computed from
// a different rating history than the one logged.
type ConsistencyError struct {
	Shard  int
	Seq    uint64
	Detail string
}

func (e *ConsistencyError) Error() string {
	return fmt.Sprintf("shard: log %d inconsistent at barrier %d: %s", e.Shard, e.Seq, e.Detail)
}

// RecoveredShard is one shard log's wal.Open outcome.
type RecoveredShard struct {
	// Snapshot is the shard's latest durable snapshot bytes, nil if
	// none.
	Snapshot []byte
	// Records is the shard log's tail to replay on top of it.
	Records []wal.Record
}

// RecoverStats reports what Recover reconstructed.
type RecoverStats struct {
	// SnapshotRatings is how many ratings the shard snapshots seeded.
	SnapshotRatings int
	// Applied is how many logged ratings replayed cleanly.
	Applied int
	// Skipped is how many logged ratings failed to apply and were
	// dropped with a warning.
	Skipped int
	// Windows is how many maintenance barriers replayed as windows.
	Windows int
	// Dropped is how many trailing barriers (a crash mid-broadcast)
	// were discarded.
	Dropped int
	// NextSeq is the barrier sequence the journal should issue next.
	NextSeq uint64
	// LastWindowEnd is the recovered maintenance-window high-water
	// mark (snapshots plus replayed barriers); EnableStreaming's
	// ResumeAfter starts here.
	LastWindowEnd float64
	// Remapped reports that ratings were rerouted because the shard
	// count changed (or snapshots disagreed with the log layout).
	Remapped bool
}

// Recover rebuilds e from per-shard WAL recoveries: seed state from
// the shard snapshots (trust records from the one with the highest
// barrier sequence, ratings rerouted under e's current shard count),
// then merge the log tails into one history — ratings interleave
// freely between barriers, barriers align across every log by
// sequence number — replaying each aligned barrier as a maintenance
// window. Barriers at or below the seeding snapshot's height are
// already reflected in its trust records and are consumed per log
// without alignment (an interrupted snapshot pass leaves logs
// rebased at different heights); alignment is enforced only for
// barriers above it. A live barrier present in only some logs is
// accepted only as the very last event (a torn broadcast) and dropped
// with a warning; any earlier divergence returns a ConsistencyError
// and leaves e untouched beyond what was already applied.
//
// The number of recovered logs does not need to match e's shard
// count: placement is a pure function of object ID and shard count,
// so a changed -shards remaps cleanly (Stats.Remapped).
func Recover(e *Engine, shards []RecoveredShard, warnf func(format string, args ...any)) (RecoverStats, error) {
	if warnf == nil {
		warnf = func(string, ...any) {}
	}
	var stats RecoverStats
	if len(shards) != len(e.states) {
		stats.Remapped = true
	}

	// Seed from snapshots: newest barrier wins the trust records;
	// ratings from every snapshot reroute by hash.
	var (
		records   core.StateView
		haveTrust bool
		trustBase uint64
		windowEnd float64
	)
	views := make([]*core.StateView, len(shards))
	for i, sh := range shards {
		if sh.Snapshot == nil {
			continue
		}
		snap, view, err := decodeShardSnapshot(sh.Snapshot)
		if err != nil {
			return stats, fmt.Errorf("shard %d: %w", i, err)
		}
		if snap.Shards != len(e.states) || snap.Shard != i {
			stats.Remapped = true
		}
		views[i] = &view
		if snap.WindowEnd > windowEnd {
			windowEnd = snap.WindowEnd
		}
		if !haveTrust || snap.BarrierSeq > trustBase {
			haveTrust = true
			trustBase = snap.BarrierSeq
			records = view
		}
	}
	var seed core.StateView
	if haveTrust {
		seed.Records = records.Records
	}
	for _, view := range views {
		if view != nil {
			seed.Ratings = append(seed.Ratings, view.Ratings...)
		}
	}
	if haveTrust || len(seed.Ratings) > 0 {
		var buf bytes.Buffer
		if err := seed.Encode(&buf); err != nil {
			return stats, err
		}
		if err := e.LoadSnapshot(&buf); err != nil {
			return stats, err
		}
		stats.SnapshotRatings = len(seed.Ratings)
	}
	// LoadSnapshot cleared the engine's window mark; restore the
	// durable high-water the snapshots recorded. Replayed barriers
	// below raise it further through ProcessWindow itself.
	e.setLastWindowEnd(windowEnd)
	stats.NextSeq = trustBase + 1

	// Merge the log tails round by round: apply every shard's ratings
	// up to its next live barrier, then require the live barriers to
	// agree before replaying the window they announce.
	cursors := make([]int, len(shards))
	for {
		// Phase 1: drain rating records up to the next live barrier.
		// Barriers already folded into the seeding snapshot (Seq <=
		// trustBase) are consumed per log WITHOUT cross-log alignment:
		// snapshots are written one log at a time, so a crash partway
		// through the pass legitimately leaves a rebased log's tail
		// empty while a lagging log still carries barriers below the
		// newest snapshot's height. Their windows are already reflected
		// in the seeded trust records; the ratings around them are not,
		// and still apply.
		for i, sh := range shards {
			for cursors[i] < len(sh.Records) {
				rec := sh.Records[cursors[i]]
				if rec.Type == wal.TypeBarrier {
					if rec.Seq > trustBase {
						break
					}
					cursors[i]++
					continue
				}
				cursors[i]++
				switch rec.Type {
				case wal.TypeRating:
					if err := e.Submit(rec.Rating); err != nil {
						warnf("shard: replay log %d rating: %v", i, err)
						stats.Skipped++
					} else {
						stats.Applied++
					}
				default:
					// TypeProcess never appears in shard logs (windows
					// are barriers there); tolerate it as a window on
					// this shard alone would be wrong, so skip loudly.
					warnf("shard: replay log %d: unexpected record type %d", i, rec.Type)
					stats.Skipped++
				}
			}
		}

		// Phase 2: align the barriers.
		present, exhausted := 0, 0
		var barrier wal.Record
		barrierShard := -1
		for i, sh := range shards {
			if cursors[i] >= len(sh.Records) {
				exhausted++
				continue
			}
			rec := sh.Records[cursors[i]]
			if present == 0 {
				barrier, barrierShard = rec, i
			} else if rec.Seq != barrier.Seq || rec.Start != barrier.Start || rec.End != barrier.End {
				return stats, &ConsistencyError{
					Shard: i,
					Seq:   rec.Seq,
					Detail: fmt.Sprintf("barrier (seq=%d, [%g,%g)) does not match log %d's (seq=%d, [%g,%g))",
						rec.Seq, rec.Start, rec.End, barrierShard, barrier.Seq, barrier.Start, barrier.End),
				}
			}
			present++
		}
		if present == 0 {
			break // all logs drained
		}
		if exhausted > 0 {
			// A barrier some logs never saw: legitimate only as the
			// torn final broadcast — nothing may follow it anywhere.
			for i, sh := range shards {
				if cursors[i] < len(sh.Records) && cursors[i]+1 < len(sh.Records) {
					return stats, &ConsistencyError{
						Shard: i,
						Seq:   barrier.Seq,
						Detail: fmt.Sprintf("barrier missing from %d log(s) but log %d continues past it",
							exhausted, i),
					}
				}
			}
			warnf("shard: dropping torn barrier %d [%g,%g) present in %d of %d logs",
				barrier.Seq, barrier.Start, barrier.End, present, len(shards))
			stats.Dropped++
			break
		}
		// All logs agree on the barrier; consume it everywhere. Phase 1
		// already consumed everything at or below trustBase, so this
		// window is not yet reflected in the seeded trust records.
		for i := range shards {
			cursors[i]++
		}
		if _, err := e.ProcessWindow(barrier.Start, barrier.End); err != nil {
			return stats, fmt.Errorf("shard: replay barrier %d: %w", barrier.Seq, err)
		}
		stats.Windows++
		if barrier.Seq >= stats.NextSeq {
			stats.NextSeq = barrier.Seq + 1
		}
	}
	stats.LastWindowEnd = e.LastWindowEnd()
	return stats, nil
}
