package shard_test

import (
	"errors"
	"io"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/rating"
	"repro/internal/shard"
	"repro/internal/shard/shardtest"
	"repro/internal/wal"
)

// openLogs opens one WAL per shard directory under dir.
func openLogs(t *testing.T, dir string, n int) ([]*wal.Log, []shard.RecoveredShard) {
	t.Helper()
	logs := make([]*wal.Log, n)
	recovered := make([]shard.RecoveredShard, n)
	for i := range logs {
		l, rec, err := wal.Open(wal.Options{
			Dir:    filepath.Join(dir, shardDirName(i)),
			Policy: wal.SyncNever,
		})
		if err != nil {
			t.Fatal(err)
		}
		logs[i] = l
		recovered[i] = shard.RecoveredShard{Snapshot: rec.Snapshot, Records: rec.Records}
	}
	return logs, recovered
}

func shardDirName(i int) string { return "shard-" + string(rune('0'+i)) }

func closeLogs(t *testing.T, logs []*wal.Log) {
	t.Helper()
	for _, l := range logs {
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// logMonth appends a month's ratings to their shard logs (routing by
// hash over n logs) and then broadcasts its barrier to every log.
func logMonth(t *testing.T, logs []*wal.Log, m shardtest.Month, seq uint64) {
	t.Helper()
	for _, r := range m.Ratings {
		l := logs[shard.ShardFor(r.Object, len(logs))]
		if err := l.Append(wal.RatingRecord(r)); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range logs {
		if err := l.Append(wal.BarrierRecord(seq, m.Start, m.End)); err != nil {
			t.Fatal(err)
		}
	}
}

// oracleFingerprint replays the months through a fresh core.System.
func oracleFingerprint(t *testing.T, months []shardtest.Month, objects int) string {
	t.Helper()
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range months {
		if err := sys.SubmitAll(m.Ratings); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.ProcessWindow(m.Start, m.End); err != nil {
			t.Fatal(err)
		}
	}
	fp, err := shardtest.Fingerprint(sys, objects)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func recoverEngine(t *testing.T, recovered []shard.RecoveredShard, shards int) (*shard.Engine, shard.RecoverStats) {
	t.Helper()
	e, err := shard.NewEngine(core.Config{}, shards)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := shard.Recover(e, recovered, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	return e, stats
}

// A clean multi-log history replays into exactly the oracle's state.
func TestRecoverRoundTrip(t *testing.T) {
	w := shardtest.Workload{Seed: 21, Months: 2, PerMonth: 200}
	months := w.Generate()
	dir := t.TempDir()

	logs, _ := openLogs(t, dir, 2)
	for m, month := range months {
		logMonth(t, logs, month, uint64(m+1))
	}
	closeLogs(t, logs)

	_, recovered := openLogs(t, dir, 2)
	e, stats := recoverEngine(t, recovered, 2)
	if stats.Windows != 2 || stats.Dropped != 0 || stats.Remapped || stats.NextSeq != 3 {
		t.Fatalf("stats %+v", stats)
	}
	got, err := shardtest.Fingerprint(e, 5)
	if err != nil {
		t.Fatal(err)
	}
	if want := oracleFingerprint(t, months, 5); got != want {
		t.Fatalf("recovered state diverges from oracle:\n%s", firstDiff(want, got))
	}
}

// Changing the shard count between runs remaps cleanly: logs written
// under 2 shards recover into a 3-shard engine bit-identically.
func TestRecoverWithChangedShardCount(t *testing.T) {
	w := shardtest.Workload{Seed: 22, Months: 2, PerMonth: 200}
	months := w.Generate()
	dir := t.TempDir()

	logs, _ := openLogs(t, dir, 2)
	for m, month := range months {
		logMonth(t, logs, month, uint64(m+1))
	}
	closeLogs(t, logs)

	_, recovered := openLogs(t, dir, 2)
	e, stats := recoverEngine(t, recovered, 3)
	if !stats.Remapped {
		t.Fatalf("shard count change not reported: %+v", stats)
	}
	got, err := shardtest.Fingerprint(e, 5)
	if err != nil {
		t.Fatal(err)
	}
	if want := oracleFingerprint(t, months, 5); got != want {
		t.Fatalf("remapped state diverges from oracle:\n%s", firstDiff(want, got))
	}
}

// A barrier that reached only some logs as the very last event is a
// torn broadcast: recovery drops it with a warning and the state is
// the oracle's state WITHOUT that window.
func TestRecoverDropsTornTrailingBarrier(t *testing.T) {
	w := shardtest.Workload{Seed: 23, Months: 2, PerMonth: 200}
	months := w.Generate()
	dir := t.TempDir()

	logs, _ := openLogs(t, dir, 2)
	logMonth(t, logs, months[0], 1)
	// Month 2's ratings land everywhere, but its barrier reaches only
	// log 0 before the crash.
	for _, r := range months[1].Ratings {
		l := logs[shard.ShardFor(r.Object, 2)]
		if err := l.Append(wal.RatingRecord(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := logs[0].Append(wal.BarrierRecord(2, months[1].Start, months[1].End)); err != nil {
		t.Fatal(err)
	}
	closeLogs(t, logs)

	_, recovered := openLogs(t, dir, 2)
	e, stats := recoverEngine(t, recovered, 2)
	if stats.Windows != 1 || stats.Dropped != 1 {
		t.Fatalf("stats %+v", stats)
	}
	// The oracle: both months' ratings, but only month 1's window.
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SubmitAll(months[0].Ratings); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ProcessWindow(months[0].Start, months[0].End); err != nil {
		t.Fatal(err)
	}
	if err := sys.SubmitAll(months[1].Ratings); err != nil {
		t.Fatal(err)
	}
	want, err := shardtest.Fingerprint(sys, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := shardtest.Fingerprint(e, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("torn-barrier recovery diverges:\n%s", firstDiff(want, got))
	}
}

// A crash partway through the one-log-at-a-time snapshot pass leaves
// shard snapshots at different barrier heights: the rebased log's
// tail is empty while a lagging log still carries ratings and
// barriers at or below the newest snapshot's height. All data is
// intact, so recovery must merge it cleanly — stale barriers consume
// per log without cross-log alignment — not refuse with a
// ConsistencyError.
func TestRecoverMisalignedSnapshotHeights(t *testing.T) {
	w := shardtest.Workload{Seed: 25, Months: 3, PerMonth: 200}
	months := w.Generate()
	dir := t.TempDir()

	logs, _ := openLogs(t, dir, 2)
	live, err := shard.NewEngine(core.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	apply := func(m shardtest.Month, seq uint64) {
		logMonth(t, logs, m, seq)
		if err := live.SubmitAll(m.Ratings); err != nil {
			t.Fatal(err)
		}
		if _, err := live.ProcessWindow(m.Start, m.End); err != nil {
			t.Fatal(err)
		}
	}
	snapshotShard := func(i int, barrier uint64) {
		if err := logs[i].Snapshot(func(w io.Writer) error {
			return shard.WriteShardSnapshot(live, i, barrier, w)
		}); err != nil {
			t.Fatal(err)
		}
	}

	apply(months[0], 1)
	// A complete snapshot pass at barrier 1...
	snapshotShard(0, 1)
	snapshotShard(1, 1)
	apply(months[1], 2)
	// ...then a pass that crashes after rebasing only log 0: log 0's
	// tail is now empty at height 2 while log 1 still holds month 2's
	// ratings and its barrier.
	snapshotShard(0, 2)
	// Month 3 lands after the interrupted pass.
	apply(months[2], 3)
	closeLogs(t, logs)

	_, recovered := openLogs(t, dir, 2)
	e, stats := recoverEngine(t, recovered, 2)
	if stats.Windows != 1 || stats.Dropped != 0 || stats.NextSeq != 4 {
		t.Fatalf("stats %+v", stats)
	}
	got, err := shardtest.Fingerprint(e, 5)
	if err != nil {
		t.Fatal(err)
	}
	if want := oracleFingerprint(t, months, 5); got != want {
		t.Fatalf("misaligned-snapshot recovery diverges:\n%s", firstDiff(want, got))
	}
}

// The extreme misalignment: only one log ever got a snapshot. The
// never-snapshotted log replays its entire tail, including barriers
// the snapshotted log already folded into its trust records.
func TestRecoverSnapshotSubsetOfLogs(t *testing.T) {
	w := shardtest.Workload{Seed: 26, Months: 2, PerMonth: 200}
	months := w.Generate()
	dir := t.TempDir()

	logs, _ := openLogs(t, dir, 2)
	live, err := shard.NewEngine(core.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for m, month := range months {
		logMonth(t, logs, month, uint64(m+1))
		if err := live.SubmitAll(month.Ratings); err != nil {
			t.Fatal(err)
		}
		if _, err := live.ProcessWindow(month.Start, month.End); err != nil {
			t.Fatal(err)
		}
	}
	// The snapshot pass dies after log 0.
	if err := logs[0].Snapshot(func(w io.Writer) error {
		return shard.WriteShardSnapshot(live, 0, 2, w)
	}); err != nil {
		t.Fatal(err)
	}
	closeLogs(t, logs)

	_, recovered := openLogs(t, dir, 2)
	if recovered[0].Snapshot == nil || recovered[1].Snapshot != nil {
		t.Fatalf("want a snapshot on log 0 only")
	}
	e, stats := recoverEngine(t, recovered, 2)
	if stats.Windows != 0 || stats.Dropped != 0 || stats.NextSeq != 3 {
		t.Fatalf("stats %+v", stats)
	}
	got, err := shardtest.Fingerprint(e, 5)
	if err != nil {
		t.Fatal(err)
	}
	if want := oracleFingerprint(t, months, 5); got != want {
		t.Fatalf("subset-snapshot recovery diverges:\n%s", firstDiff(want, got))
	}
}

// A barrier missing from one log while another log CONTINUES past it
// cannot be crash damage — recovery must fail loudly, not serve trust
// computed from a diverged history.
func TestRecoverMidStreamMismatchFails(t *testing.T) {
	dir := t.TempDir()
	logs, _ := openLogs(t, dir, 2)
	r0 := rating.Rating{Rater: 1, Object: 0, Value: 0.5, Time: 1}
	r1 := rating.Rating{Rater: 2, Object: 0, Value: 0.6, Time: 40}
	l := logs[shard.ShardFor(rating.ObjectID(0), 2)]
	if err := l.Append(wal.RatingRecord(r0)); err != nil {
		t.Fatal(err)
	}
	// The barrier reaches only object 0's log, and that log keeps
	// going afterwards.
	if err := l.Append(wal.BarrierRecord(1, 0, 30)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(wal.RatingRecord(r1)); err != nil {
		t.Fatal(err)
	}
	closeLogs(t, logs)

	_, recovered := openLogs(t, dir, 2)
	e, err := shard.NewEngine(core.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = shard.Recover(e, recovered, t.Logf)
	var cerr *shard.ConsistencyError
	if !errors.As(err, &cerr) {
		t.Fatalf("want ConsistencyError, got %v", err)
	}
}

// Barriers whose sequence numbers disagree across logs fail the same
// way.
func TestRecoverSeqMismatchFails(t *testing.T) {
	dir := t.TempDir()
	logs, _ := openLogs(t, dir, 2)
	if err := logs[0].Append(wal.BarrierRecord(1, 0, 30)); err != nil {
		t.Fatal(err)
	}
	if err := logs[1].Append(wal.BarrierRecord(2, 0, 30)); err != nil {
		t.Fatal(err)
	}
	closeLogs(t, logs)

	_, recovered := openLogs(t, dir, 2)
	e, err := shard.NewEngine(core.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = shard.Recover(e, recovered, t.Logf)
	var cerr *shard.ConsistencyError
	if !errors.As(err, &cerr) {
		t.Fatalf("want ConsistencyError, got %v", err)
	}
}

// Shard snapshots seed recovery: the log tail before the snapshot is
// compacted away, windows at or below the snapshot's barrier are
// skipped, and the post-snapshot tail replays on top.
func TestRecoverFromShardSnapshots(t *testing.T) {
	w := shardtest.Workload{Seed: 24, Months: 3, PerMonth: 200}
	months := w.Generate()
	dir := t.TempDir()

	logs, _ := openLogs(t, dir, 2)
	// Live run: months 1-2 logged and applied, then snapshotted at
	// barrier 2.
	live, err := shard.NewEngine(core.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 2; m++ {
		logMonth(t, logs, months[m], uint64(m+1))
		if err := live.SubmitAll(months[m].Ratings); err != nil {
			t.Fatal(err)
		}
		if _, err := live.ProcessWindow(months[m].Start, months[m].End); err != nil {
			t.Fatal(err)
		}
	}
	for i, l := range logs {
		i := i
		if err := l.Snapshot(func(w io.Writer) error {
			return shard.WriteShardSnapshot(live, i, 2, w)
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Month 3 lands after the snapshot.
	logMonth(t, logs, months[2], 3)
	closeLogs(t, logs)

	_, recovered := openLogs(t, dir, 2)
	for i, rec := range recovered {
		if rec.Snapshot == nil {
			t.Fatalf("shard %d: no snapshot recovered", i)
		}
	}
	e, stats := recoverEngine(t, recovered, 2)
	if stats.SnapshotRatings == 0 || stats.Windows != 1 || stats.NextSeq != 4 {
		t.Fatalf("stats %+v", stats)
	}
	got, err := shardtest.Fingerprint(e, 5)
	if err != nil {
		t.Fatal(err)
	}
	if want := oracleFingerprint(t, months, 5); got != want {
		t.Fatalf("snapshot-seeded recovery diverges:\n%s", firstDiff(want, got))
	}
}
