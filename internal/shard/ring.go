package shard

import (
	"sync/atomic"

	"repro/internal/rating"
)

// ringSlot is one cell of a shard's ingest ring: the rating, the
// submission it acknowledges into, and the Vyukov sequence stamp that
// publishes the cell between producers and the shard worker without a
// lock.
type ringSlot struct {
	seq atomic.Uint64
	r   rating.Rating
	sub *submission
}

// ring is a bounded lock-free multi-producer single-consumer queue
// (Vyukov's bounded MPMC scheme, specialized to one consumer): the
// router's replacement for the old mutex+waiter shardBatcher. Many
// submitter goroutines claim slots with one CAS each; the shard
// worker drains with plain loads and per-slot releases. Capacity is a
// power of two fixed at construction — a full ring is backpressure,
// not an error (see Router.push).
type ring struct {
	slots []ringSlot
	mask  uint64
	size  uint64

	// head is the next position a producer claims. Padded away from
	// the consumer-owned tail so producers and the worker don't false-
	// share a cache line.
	head atomic.Uint64
	_    [56]byte
	// tail is the next position the worker consumes. Single consumer,
	// so a plain field is enough.
	tail uint64
}

func newRing(capacity int) *ring {
	size := uint64(1)
	for size < uint64(capacity) {
		size <<= 1
	}
	q := &ring{slots: make([]ringSlot, size), mask: size - 1, size: size}
	for i := range q.slots {
		q.slots[i].seq.Store(uint64(i))
	}
	return q
}

// push claims a slot and publishes one rating. It returns false when
// the ring is full; the caller decides how to wait (the router rings
// the worker's doorbell and parks on its space channel).
func (q *ring) push(r rating.Rating, sub *submission) bool {
	for {
		pos := q.head.Load()
		s := &q.slots[pos&q.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			if q.head.CompareAndSwap(pos, pos+1) {
				s.r, s.sub = r, sub
				s.seq.Store(pos + 1)
				return true
			}
		case seq < pos:
			return false // full: the consumer has not freed this slot yet
		}
		// seq > pos: another producer claimed pos; reload and retry.
	}
}

// empty reports whether the ring currently holds no published slots.
// Consumer-side only.
func (q *ring) empty() bool {
	return q.slots[q.tail&q.mask].seq.Load() != q.tail+1
}
