package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/rating"
)

// FlushFunc applies one shard's coalesced batch. The router guarantees
// every rating in rs routes to the given shard. In-process engines
// pass Engine.SubmitShard; ratingd wraps it with a WAL append so the
// batch is durable before it is applied.
type FlushFunc func(shard int, rs []rating.Rating) error

// ErrRouterClosed is returned by submissions to a closed router.
var ErrRouterClosed = errors.New("shard: router closed")

// RouterConfig configures NewRouter.
type RouterConfig struct {
	// Shards is the shard count; must match the engine behind Flush.
	Shards int
	// BatchSize flushes a shard's pending batch once it reaches this
	// many ratings. Zero means 256.
	BatchSize int
	// Interval flushes non-empty pending batches on this cadence, so a
	// trickle of submissions is never stranded waiting for a full
	// batch. Zero means 2ms; negative disables the ticker (flushes
	// happen only on size, Flush or Close).
	Interval time.Duration
	// Flush applies one shard's batch.
	Flush FlushFunc
	// Metrics receives per-shard flush telemetry; nil disables.
	Metrics *Metrics
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.BatchSize == 0 {
		c.BatchSize = 256
	}
	if c.Interval == 0 {
		c.Interval = 2 * time.Millisecond
	}
	return c
}

// Router is the batching front of a sharded engine: submissions are
// split by object shard, coalesced into per-shard batches, and
// flushed by a per-shard worker when the batch fills or the interval
// elapses (group commit). Submit blocks until every batch holding the
// caller's ratings has been flushed, so acknowledgement still means
// applied — and, when Flush appends to a WAL, durable.
//
// The coalescing is what makes sharding pay on a single core: a
// shard's flush applies its whole batch with one sorted merge per
// object (Store.AddBatch), so per-rating insertion cost drops with
// the batch size the shard accumulates.
type Router struct {
	cfg      RouterConfig
	batchers []*shardBatcher
	stop     chan struct{}
	wg       sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

type shardBatcher struct {
	shard int

	mu      sync.Mutex
	pending []rating.Rating
	waiters []chan error

	kick chan struct{}
}

// NewRouter builds and starts the router's per-shard workers.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: router shard count %d", cfg.Shards)
	}
	if cfg.Flush == nil {
		return nil, errors.New("shard: router needs a flush function")
	}
	cfg = cfg.withDefaults()
	r := &Router{cfg: cfg, stop: make(chan struct{})}
	r.batchers = make([]*shardBatcher, cfg.Shards)
	for i := range r.batchers {
		b := &shardBatcher{shard: i, kick: make(chan struct{}, 1)}
		r.batchers[i] = b
		r.wg.Add(1)
		go r.run(b)
	}
	return r, nil
}

func (r *Router) run(b *shardBatcher) {
	defer r.wg.Done()
	var tick <-chan time.Time
	if r.cfg.Interval > 0 {
		t := time.NewTicker(r.cfg.Interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-b.kick:
			r.flush(b)
		case <-tick:
			r.flush(b)
		case <-r.stop:
			// Drain whatever is pending so Close never strands a
			// blocked submitter.
			r.flush(b)
			return
		}
	}
}

// flush applies the batcher's pending batch and wakes its waiters.
func (r *Router) flush(b *shardBatcher) {
	b.mu.Lock()
	batch := b.pending
	waiters := b.waiters
	b.pending = nil
	b.waiters = nil
	b.mu.Unlock()
	if len(batch) == 0 && len(waiters) == 0 {
		return
	}
	var err error
	if len(batch) > 0 {
		err = r.cfg.Flush(b.shard, batch)
		if err != nil {
			r.cfg.Metrics.flushFailed(b.shard)
		} else {
			r.cfg.Metrics.flushed(b.shard, len(batch))
		}
	}
	for _, w := range waiters {
		w <- err
	}
}

// Submit routes the batch and blocks until every shard batch holding
// one of its ratings has flushed. Ratings are validated upfront so a
// malformed rating rejects only this submission, never a coalesced
// batch containing other callers' ratings. The first flush error is
// returned; the submission's ratings must then be treated as not
// applied on the failed shard.
func (r *Router) Submit(rs []rating.Rating) error {
	wait, err := r.SubmitAsync(rs)
	if err != nil {
		return err
	}
	return wait()
}

// SubmitAsync routes the batch like Submit but returns immediately
// after enqueueing, handing back a wait function that blocks until
// every shard batch holding one of the caller's ratings has flushed
// and returns the first flush error. The caller's slice is not
// retained — its values are copied into per-shard groups before
// SubmitAsync returns — so the caller may reuse it at once, pipelining
// the decode of the next batch against this batch's group commit.
// Each returned wait must be called exactly once.
func (r *Router) SubmitAsync(rs []rating.Rating) (func() error, error) {
	if len(rs) == 0 {
		return func() error { return nil }, nil
	}
	for i, rt := range rs {
		if err := rt.Validate(); err != nil {
			return nil, fmt.Errorf("shard: rating %d: %w", i, err)
		}
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrRouterClosed
	}
	n := len(r.batchers)
	groups := make(map[int][]rating.Rating)
	for _, rt := range rs {
		s := ShardFor(rt.Object, n)
		groups[s] = append(groups[s], rt)
	}
	waits := make([]chan error, 0, len(groups))
	for s, group := range groups {
		waits = append(waits, r.enqueue(r.batchers[s], group))
	}
	r.mu.Unlock()

	return func() error {
		var first error
		for _, w := range waits {
			if err := <-w; err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}

// SubmitOne routes a single rating.
func (r *Router) SubmitOne(rt rating.Rating) error {
	return r.Submit([]rating.Rating{rt})
}

// enqueue appends group to the batcher and registers a waiter; a full
// batch kicks an immediate flush. Called with r.mu held, so a closing
// router cannot race past a submission without draining it.
func (r *Router) enqueue(b *shardBatcher, group []rating.Rating) chan error {
	w := make(chan error, 1)
	b.mu.Lock()
	b.pending = append(b.pending, group...)
	b.waiters = append(b.waiters, w)
	full := len(b.pending) >= r.cfg.BatchSize
	b.mu.Unlock()
	if full {
		select {
		case b.kick <- struct{}{}:
		default:
		}
	}
	return w
}

// Flush forces every shard's pending batch out and blocks until the
// flushes complete, returning the first error. Call before reading
// engine state that must reflect all acknowledged-pending traffic
// (e.g. before a maintenance window).
func (r *Router) Flush() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrRouterClosed
	}
	waits := make([]chan error, len(r.batchers))
	for i, b := range r.batchers {
		waits[i] = r.enqueue(b, nil)
	}
	r.mu.Unlock()
	for _, b := range r.batchers {
		select {
		case b.kick <- struct{}{}:
		default:
		}
	}
	var first error
	for _, w := range waits {
		if err := <-w; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close drains pending batches, stops the workers and rejects further
// submissions.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	close(r.stop)
	r.wg.Wait()
	return nil
}
