package shard

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rating"
)

// FlushFunc applies one shard's coalesced batch. The router guarantees
// every rating in rs routes to the given shard. The slice is the shard
// worker's reusable batch buffer: it is valid only for the duration of
// the call and must not be retained. In-process engines pass
// Engine.SubmitShard; ratingd wraps it with a WAL append so the batch
// is durable before it is applied.
type FlushFunc func(shard int, rs []rating.Rating) error

// ErrRouterClosed is returned by submissions to a closed router.
var ErrRouterClosed = errors.New("shard: router closed")

// RouterConfig configures NewRouter.
type RouterConfig struct {
	// Shards is the shard count; must match the engine behind Flush.
	Shards int
	// BatchSize flushes a shard's pending batch once it reaches this
	// many ratings. Zero means 256.
	BatchSize int
	// Interval flushes non-empty pending batches on this cadence, so a
	// trickle of submissions is never stranded waiting for a full
	// batch. Zero means 2ms; negative disables the ticker (flushes
	// happen only on size, Flush or Close).
	Interval time.Duration
	// QueueDepth is the capacity, in ratings, of each shard's ingest
	// ring (rounded up to a power of two). A full ring is backpressure:
	// submitters park until the shard worker drains. Zero picks
	// 4×BatchSize clamped to [1024, 65536].
	QueueDepth int
	// Flush applies one shard's batch.
	Flush FlushFunc
	// Metrics receives per-shard flush telemetry; nil disables.
	Metrics *Metrics
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.BatchSize == 0 {
		c.BatchSize = 256
	}
	if c.Interval == 0 {
		c.Interval = 2 * time.Millisecond
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.BatchSize
		if c.QueueDepth < 1024 {
			c.QueueDepth = 1024
		}
		if c.QueueDepth > 65536 {
			c.QueueDepth = 65536
		}
	}
	return c
}

// Router is the batching front of a sharded engine: submitters write
// each rating straight into its shard's lock-free ingest ring, and a
// dedicated per-shard worker drains the ring into a reusable batch
// that it flushes when the batch fills or the interval elapses (group
// commit). Submit blocks until every shard batch holding the caller's
// ratings has been flushed, so acknowledgement still means applied —
// and, when Flush appends to a WAL, durable.
//
// There is no lock anywhere on the submit path: producers claim ring
// slots with one CAS per rating, wake workers through a buffered
// doorbell channel, and block only when a ring is full (backpressure)
// or on their submission's acknowledgement. The coalescing is what
// makes sharding pay on a single core: a shard's flush applies its
// whole batch with one sorted merge per object (Store.AddBatch), so
// per-rating insertion cost drops with the batch size the shard
// accumulates.
type Router struct {
	cfg     RouterConfig
	workers []*shardWorker
	wg      sync.WaitGroup

	// stopc is closed by Close once no producer is mid-submit, telling
	// workers to drain their ring one final time and exit; stopped is
	// closed after they have, releasing any Flush caller racing Close.
	stopc   chan struct{}
	stopped chan struct{}

	// closed rejects new submissions; active counts producers inside
	// submit. Close flips closed first, then spins until active drops
	// to zero, so every accepted submission's ratings are in a ring —
	// and therefore drained and acknowledged — before stopc closes.
	closed atomic.Bool
	active atomic.Int64
}

// submission is one Submit/SubmitAsync call's acknowledgement state:
// pending counts ratings not yet flushed, errp latches the first flush
// error, and done delivers the group-commit result when the last
// rating's flush completes. Submissions are pooled; wait recycles.
type submission struct {
	pending atomic.Int64
	errp    atomic.Pointer[error]
	done    chan error
}

var submissionPool = sync.Pool{
	New: func() any { return &submission{done: make(chan error, 1)} },
}

func (s *submission) wait() error {
	err := <-s.done
	submissionPool.Put(s)
	return err
}

// shardWorker owns one shard's ingest ring and batch buffer. Only the
// worker goroutine touches batch/subs; producers communicate through
// the ring and the two signal channels.
type shardWorker struct {
	shard int
	q     *ring
	// bell wakes the worker to drain (capacity 1, non-blocking sends:
	// a pending token already guarantees a wakeup).
	bell chan struct{}
	// space wakes one producer parked on a full ring after the worker
	// drains (capacity 1, non-blocking sends).
	space chan struct{}
	// flushc carries Flush requests; the worker drains, flushes and
	// replies with that flush's error.
	flushc chan chan error

	batch []rating.Rating
	subs  []*submission
}

// NewRouter builds and starts the router's per-shard workers.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: router shard count %d", cfg.Shards)
	}
	if cfg.Flush == nil {
		return nil, errors.New("shard: router needs a flush function")
	}
	cfg = cfg.withDefaults()
	r := &Router{
		cfg:     cfg,
		stopc:   make(chan struct{}),
		stopped: make(chan struct{}),
	}
	batchCap := cfg.BatchSize
	if batchCap > 4096 {
		batchCap = 4096
	}
	r.workers = make([]*shardWorker, cfg.Shards)
	for i := range r.workers {
		w := &shardWorker{
			shard:  i,
			q:      newRing(cfg.QueueDepth),
			bell:   make(chan struct{}, 1),
			space:  make(chan struct{}, 1),
			flushc: make(chan chan error),
			batch:  make([]rating.Rating, 0, batchCap),
			subs:   make([]*submission, 0, batchCap),
		}
		r.workers[i] = w
		r.wg.Add(1)
		go r.runWorker(w)
	}
	return r, nil
}

func (r *Router) runWorker(w *shardWorker) {
	defer r.wg.Done()
	var tick <-chan time.Time
	if r.cfg.Interval > 0 {
		t := time.NewTicker(r.cfg.Interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-w.bell:
			w.drain()
			if len(w.batch) >= r.cfg.BatchSize {
				r.flushWorker(w)
			}
		case <-tick:
			w.drain()
			r.flushWorker(w)
		case reply := <-w.flushc:
			w.drain()
			reply <- r.flushWorker(w)
		case <-r.stopc:
			// Producers have quiesced (Close waits for them before
			// closing stopc), so one final drain empties the ring and
			// the flush acknowledges every accepted submission.
			w.drain()
			r.flushWorker(w)
			return
		}
	}
}

// drain moves every published ring slot into the worker's batch and,
// if anything moved, wakes one producer that may be parked on a full
// ring.
func (w *shardWorker) drain() {
	q := w.q
	drained := false
	for {
		s := &q.slots[q.tail&q.mask]
		if s.seq.Load() != q.tail+1 {
			break
		}
		w.batch = append(w.batch, s.r)
		w.subs = append(w.subs, s.sub)
		s.sub = nil
		s.seq.Store(q.tail + q.size)
		q.tail++
		drained = true
	}
	if drained {
		select {
		case w.space <- struct{}{}:
		default:
		}
	}
}

// flushWorker applies the worker's accumulated batch and settles each
// member rating's submission: the first flush error is latched, and
// whichever shard worker retires a submission's last rating delivers
// the group-commit acknowledgement.
func (r *Router) flushWorker(w *shardWorker) error {
	if len(w.batch) == 0 {
		return nil
	}
	err := r.cfg.Flush(w.shard, w.batch)
	if err != nil {
		r.cfg.Metrics.flushFailed(w.shard)
	} else {
		r.cfg.Metrics.flushed(w.shard, len(w.batch))
	}
	var box *error
	if err != nil {
		e := err
		box = &e
	}
	for i, sub := range w.subs {
		w.subs[i] = nil
		if box != nil {
			sub.errp.CompareAndSwap(nil, box)
		}
		if sub.pending.Add(-1) == 0 {
			var final error
			if p := sub.errp.Load(); p != nil {
				final = *p
			}
			sub.done <- final
		}
	}
	w.batch = w.batch[:0]
	w.subs = w.subs[:0]
	return err
}

// Submit routes the batch and blocks until every shard batch holding
// one of its ratings has flushed. Ratings are validated upfront so a
// malformed rating rejects only this submission, never a coalesced
// batch containing other callers' ratings. The first flush error is
// returned; the submission's ratings must then be treated as not
// applied on the failed shard.
func (r *Router) Submit(rs []rating.Rating) error {
	if len(rs) == 0 {
		return nil
	}
	sub, err := r.submit(rs)
	if err != nil {
		return err
	}
	return sub.wait()
}

// SubmitAsync routes the batch like Submit but returns immediately
// after enqueueing, handing back a wait function that blocks until
// every shard batch holding one of the caller's ratings has flushed
// and returns the first flush error. The caller's slice is not
// retained — its values are copied into the shard rings before
// SubmitAsync returns — so the caller may reuse it at once, pipelining
// the decode of the next batch against this batch's group commit.
// Each returned wait must be called exactly once.
func (r *Router) SubmitAsync(rs []rating.Rating) (func() error, error) {
	if len(rs) == 0 {
		return func() error { return nil }, nil
	}
	sub, err := r.submit(rs)
	if err != nil {
		return nil, err
	}
	return sub.wait, nil
}

// SubmitOne routes a single rating.
func (r *Router) SubmitOne(rt rating.Rating) error {
	return r.Submit([]rating.Rating{rt})
}

// submit validates rs, publishes every rating into its shard's ring
// under a pooled submission, and rings each touched shard's doorbell.
// The active counter brackets the ring writes so Close can wait for
// in-flight submissions before stopping the workers: once submit
// returns nil error, the submission's acknowledgement is guaranteed.
func (r *Router) submit(rs []rating.Rating) (*submission, error) {
	for i, rt := range rs {
		if err := rt.Validate(); err != nil {
			return nil, fmt.Errorf("shard: rating %d: %w", i, err)
		}
	}
	r.active.Add(1)
	if r.closed.Load() {
		r.active.Add(-1)
		return nil, ErrRouterClosed
	}
	sub := submissionPool.Get().(*submission)
	sub.errp.Store(nil)
	sub.pending.Store(int64(len(rs)))
	n := len(r.workers)
	switch {
	case n == 1:
		w := r.workers[0]
		for _, rt := range rs {
			r.push(w, rt, sub)
		}
		ringBell(w)
	case n <= 64:
		// Defer doorbells to one per touched shard: a non-blocking
		// channel send per rating would dominate the per-rating cost.
		var touched uint64
		for _, rt := range rs {
			s := ShardFor(rt.Object, n)
			r.push(r.workers[s], rt, sub)
			touched |= 1 << uint(s)
		}
		for touched != 0 {
			s := bits.TrailingZeros64(touched)
			touched &^= 1 << uint(s)
			ringBell(r.workers[s])
		}
	default:
		for _, rt := range rs {
			w := r.workers[ShardFor(rt.Object, n)]
			r.push(w, rt, sub)
			ringBell(w)
		}
	}
	r.active.Add(-1)
	return sub, nil
}

// push publishes one rating, parking on the worker's space channel
// when the ring is full. The doorbell before parking guarantees the
// worker will drain; the worker stays alive for as long as any
// producer is mid-submit, so the park always resolves.
func (r *Router) push(w *shardWorker, rt rating.Rating, sub *submission) {
	for !w.q.push(rt, sub) {
		ringBell(w)
		<-w.space
	}
}

func ringBell(w *shardWorker) {
	select {
	case w.bell <- struct{}{}:
	default:
	}
}

// Flush forces every shard's pending batch out and blocks until the
// flushes complete, returning the first error. Call before reading
// engine state that must reflect all acknowledged-pending traffic
// (e.g. before a maintenance window).
func (r *Router) Flush() error {
	if r.closed.Load() {
		return ErrRouterClosed
	}
	replies := make([]chan error, 0, len(r.workers))
	for _, w := range r.workers {
		reply := make(chan error, 1)
		select {
		case w.flushc <- reply:
			replies = append(replies, reply)
		case <-r.stopped:
			// Lost the race with Close; its final drain has already
			// flushed everything pending.
			return ErrRouterClosed
		}
	}
	var first error
	for _, reply := range replies {
		if err := <-reply; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close drains pending batches, stops the workers and rejects further
// submissions.
func (r *Router) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Wait for in-flight submissions to finish their ring writes; the
	// workers are still draining, so a producer parked on a full ring
	// makes progress. Then stop the workers, whose final drain
	// acknowledges everything accepted.
	for r.active.Load() > 0 {
		runtime.Gosched()
	}
	close(r.stopc)
	r.wg.Wait()
	close(r.stopped)
	return nil
}
