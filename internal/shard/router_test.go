package shard_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rating"
	"repro/internal/shard"
)

func mk(obj, i int) rating.Rating {
	return rating.Rating{
		Rater:  rating.RaterID(i % 7),
		Object: rating.ObjectID(obj),
		Value:  0.5,
		Time:   float64(i),
	}
}

// A full batch flushes immediately and coalesces many submissions
// into few AddBatch merges.
func TestRouterCoalescesBySize(t *testing.T) {
	var flushes, ratings atomic.Int64
	r, err := shard.NewRouter(shard.RouterConfig{
		Shards:    2,
		BatchSize: 8,
		Interval:  -1, // size-only, so the count below is deterministic
		Flush: func(s int, rs []rating.Rating) error {
			flushes.Add(1)
			ratings.Add(int64(len(rs)))
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// All to one object, so one shard fills fast.
			if err := r.SubmitOne(mk(1, i)); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ratings.Load(); got != n {
		t.Fatalf("flushed %d ratings, want %d", got, n)
	}
	// 64 ratings at batch size 8 cannot take more than 64/8 + 1 tail
	// flushes if coalescing works at all; without coalescing it would
	// be 64.
	if got := flushes.Load(); got > n/8+1 {
		t.Fatalf("%d flushes for %d ratings at batch size 8 — no coalescing", got, n)
	}
}

// The interval flushes a trickle that never fills a batch.
func TestRouterFlushesOnInterval(t *testing.T) {
	var ratings atomic.Int64
	r, err := shard.NewRouter(shard.RouterConfig{
		Shards:    2,
		BatchSize: 1 << 20,
		Interval:  time.Millisecond,
		Flush: func(s int, rs []rating.Rating) error {
			ratings.Add(int64(len(rs)))
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.SubmitOne(mk(1, 0)); err != nil {
		t.Fatal(err)
	}
	// Submit returned, so the interval flush already ran.
	if got := ratings.Load(); got != 1 {
		t.Fatalf("flushed %d ratings, want 1", got)
	}
}

// Flush errors propagate to every blocked submitter of the batch.
func TestRouterPropagatesFlushErrors(t *testing.T) {
	boom := errors.New("disk on fire")
	r, err := shard.NewRouter(shard.RouterConfig{
		Shards:    2,
		BatchSize: 4,
		Interval:  -1,
		Flush:     func(int, []rating.Rating) error { return boom },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = r.SubmitOne(mk(1, i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("submitter %d: %v, want flush error", i, err)
		}
	}
}

// Malformed ratings are rejected before they can poison a coalesced
// batch.
func TestRouterValidatesUpfront(t *testing.T) {
	r, err := shard.NewRouter(shard.RouterConfig{
		Shards: 2,
		Flush:  func(int, []rating.Rating) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	bad := rating.Rating{Object: 1, Value: 7}
	if err := r.SubmitOne(bad); err == nil {
		t.Fatal("invalid rating accepted")
	}
}

// Close never strands a blocked submitter: every accepted submission
// is flushed, every late one is rejected with ErrRouterClosed, and
// the flushed count matches the accepted count exactly.
func TestRouterCloseDrains(t *testing.T) {
	var ratings atomic.Int64
	r, err := shard.NewRouter(shard.RouterConfig{
		Shards:    2,
		BatchSize: 1 << 20,
		Interval:  -1, // nothing flushes until Close
		Flush: func(s int, rs []rating.Rating) error {
			ratings.Add(int64(len(rs)))
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = r.SubmitOne(mk(1, i))
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let submitters block on the flush
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	accepted := 0
	for i, err := range errs {
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, shard.ErrRouterClosed):
			// Lost the race to Close; must not have been applied.
		default:
			t.Fatalf("submitter %d: %v", i, err)
		}
	}
	if got := ratings.Load(); got != int64(accepted) {
		t.Fatalf("flushed %d ratings, %d submissions were accepted", got, accepted)
	}
	if err := r.SubmitOne(mk(1, 99)); !errors.Is(err, shard.ErrRouterClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

// SubmitShard rejects misrouted ratings — recovery depends on
// placement being a pure function of the object ID.
func TestEngineRejectsMisroutedBatch(t *testing.T) {
	e, err := shard.NewEngine(core.Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := mk(1, 0)
	wrong := (e.ShardFor(r.Object) + 1) % 4
	if err := e.SubmitShard(wrong, []rating.Rating{r}); err == nil {
		t.Fatal("misrouted batch accepted")
	}
	if e.Len() != 0 {
		t.Fatalf("misrouted batch mutated state: len=%d", e.Len())
	}
}

// SubmitAsync must copy the caller's values before returning, so the
// slice can be truncated and refilled while the batch group-commits —
// the contract the streaming ingest endpoint's pooled buffers rely on.
func TestRouterSubmitAsyncCopiesAndPipelines(t *testing.T) {
	var applied atomic.Int64
	gate := make(chan struct{})
	r, err := shard.NewRouter(shard.RouterConfig{
		Shards:    2,
		BatchSize: 4,
		Interval:  time.Millisecond,
		Flush: func(s int, rs []rating.Rating) error {
			<-gate // hold the flush so waits are observably pending
			for _, rt := range rs {
				if rt.Value != 0.5 {
					t.Errorf("flush saw clobbered rating %+v", rt)
				}
			}
			applied.Add(int64(len(rs)))
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	buf := make([]rating.Rating, 0, 4)
	waits := make([]func() error, 0, 4)
	for b := 0; b < 4; b++ {
		buf = buf[:0]
		for i := 0; i < 4; i++ {
			buf = append(buf, mk(b, b*4+i))
		}
		wait, err := r.SubmitAsync(buf)
		if err != nil {
			t.Fatal(err)
		}
		waits = append(waits, wait)
		// Clobber the shared buffer immediately: if the router aliased
		// it, the held-back flush above would observe garbage.
		for i := range buf {
			buf[i].Value = -1
		}
	}
	if got := applied.Load(); got != 0 {
		t.Fatalf("flushes ran before release: %d", got)
	}
	close(gate)
	for i, wait := range waits {
		if err := wait(); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
	}
	if got := applied.Load(); got != 16 {
		t.Fatalf("applied %d, want 16", got)
	}
}

// An async submit's wait surfaces the flush error of its own batch.
func TestRouterSubmitAsyncReportsFlushError(t *testing.T) {
	boom := errors.New("disk gone")
	r, err := shard.NewRouter(shard.RouterConfig{
		Shards:   1,
		Interval: time.Millisecond,
		Flush: func(s int, rs []rating.Rating) error {
			return boom
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	wait, err := r.SubmitAsync([]rating.Rating{mk(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := wait(); !errors.Is(err, boom) {
		t.Fatalf("wait err = %v", err)
	}
}

// SubmitAsync after Close refuses rather than stranding a waiter.
func TestRouterSubmitAsyncClosed(t *testing.T) {
	r, err := shard.NewRouter(shard.RouterConfig{
		Shards: 1,
		Flush:  func(int, []rating.Rating) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SubmitAsync([]rating.Rating{mk(1, 1)}); !errors.Is(err, shard.ErrRouterClosed) {
		t.Fatalf("err = %v", err)
	}
}
