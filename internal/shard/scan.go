package shard

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/parallel"
	"repro/internal/rating"
	"repro/internal/trust"
)

// RaterEvidence is one rater's Procedure 2 evidence from a single
// object's scan: three integer counts plus the one float the trust
// fold is order-sensitive in. A cluster router folds these across
// members in ascending object order — the canonical single-system
// order — and the result is bit-identical to an unpartitioned
// ProcessWindow, because each (object, rater) pair contributes exactly
// one float add and JSON float64 round-trips are exact.
type RaterEvidence struct {
	Rater      rating.RaterID
	N          int
	Filtered   int
	Suspicious int
	Mass       float64
}

// ObjectEvidence is one object's maintenance-window outcome in
// transportable form: the report counters shardtest fingerprints plus
// the per-rater evidence, raters ascending.
type ObjectEvidence struct {
	Object            rating.ObjectID
	Considered        int
	Filtered          int
	Windows           int
	SuspiciousWindows int
	Degraded          bool
	Raters            []RaterEvidence
}

// ScanWindow runs the scan half of a maintenance window — restrict,
// filter, detect — over every local object with time in [start, end),
// without charging trust. The returned evidence (objects ascending) is
// what a cluster member ships to the router, which folds all members'
// evidence and broadcasts the merged observations back through
// ApplyObservations.
//
// ScanWindow refuses to run when a window-level aux detector (the
// collusion graph or the iterative filter) is configured: those need
// the whole window's cross-object ratings, which a member scanning
// only its owned range cannot supply. Cluster deployments run the
// per-object AR pipeline.
func (e *Engine) ScanWindow(start, end float64) ([]ObjectEvidence, error) {
	if end <= start {
		return nil, fmt.Errorf("shard: window [%g,%g)", start, end)
	}
	if e.cfg.Collusion != nil || e.cfg.Iterative != nil {
		return nil, fmt.Errorf("shard: ScanWindow with window-level aux detectors configured (collusion/iterative need the whole window's cross-object ratings)")
	}
	e.lockAll()
	defer e.unlockAll()

	var objects []rating.ObjectID
	byObject := make(map[rating.ObjectID]*shardState)
	for _, st := range e.states {
		for _, obj := range st.store.Objects() {
			objects = append(objects, obj)
			byObject[obj] = st
		}
	}
	sort.Slice(objects, func(i, j int) bool { return objects[i] < objects[j] })

	workers := e.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	scans, err := parallel.MapLocal(len(objects), workers,
		detector.NewWorkspace,
		func(i int, ws *detector.Workspace) (core.ObjectScan, error) {
			obj := objects[i]
			all, err := byObject[obj].store.ForObject(obj)
			if err != nil {
				return core.ObjectScan{}, fmt.Errorf("shard: %w", err)
			}
			return e.pipe.ScanObject(ws, obj, all, start, end)
		})
	if err != nil {
		return nil, err
	}

	var out []ObjectEvidence
	for _, scan := range scans {
		if !scan.OK {
			continue
		}
		// Charge into a fresh single-object map: with exactly one scan
		// folded, each rater's Mass is a single float assignment, so
		// the evidence carries the object's contribution exactly.
		obs := make(map[rating.RaterID]trust.Observation)
		e.pipe.Charge(obs, scan)
		ev := ObjectEvidence{
			Object:            scan.Report.Object,
			Considered:        scan.Report.Considered,
			Filtered:          scan.Report.Filtered,
			Windows:           len(scan.Report.Detection.Windows),
			SuspiciousWindows: len(scan.Report.Detection.SuspiciousWindows()),
			Degraded:          scan.Report.Degraded,
		}
		ids := make([]rating.RaterID, 0, len(obs))
		for id := range obs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			o := obs[id]
			ev.Raters = append(ev.Raters, RaterEvidence{
				Rater:      id,
				N:          o.N,
				Filtered:   o.Filtered,
				Suspicious: o.Suspicious,
				Mass:       o.SuspicionMass,
			})
		}
		out = append(out, ev)
	}
	return out, nil
}

// FoldEvidence replays the canonical trust fold over per-object
// evidence: objects must already be in ascending object order (the
// order ScanWindow emits and a router merges to). It reproduces
// Pipeline.Charge's accumulation bit for bit — one float add per
// (object, rater) pair, in the same order a single system performs
// them.
func FoldEvidence(objects []ObjectEvidence) map[rating.RaterID]trust.Observation {
	obs := make(map[rating.RaterID]trust.Observation)
	for _, ev := range objects {
		for _, re := range ev.Raters {
			o := obs[re.Rater]
			o.N += re.N
			o.Filtered += re.Filtered
			o.Suspicious += re.Suspicious
			o.SuspicionMass += re.Mass
			obs[re.Rater] = o
		}
	}
	return obs
}

// ApplyObservations applies an externally-folded window's observations
// to the global trust manager — the charge half of a maintenance
// window, used by cluster members after the router merges every
// member's scan evidence. The arithmetic is exactly ProcessWindow's
// UpdateBatch call, so a member applying the merged batch lands on the
// same trust state as a single system running the whole window.
func (e *Engine) ApplyObservations(obs map[rating.RaterID]trust.Observation, end float64) error {
	sp := e.streaming.Load()
	var prevMal []rating.RaterID
	e.trustMu.Lock()
	if sp != nil {
		prevMal = e.manager.Malicious()
	}
	err := e.manager.UpdateBatch(obs, end)
	if err == nil && end > e.lastWindowEnd {
		e.lastWindowEnd = end
	}
	var newMal []rating.RaterID
	var newTrust map[rating.RaterID]float64
	if err == nil && sp != nil {
		was := make(map[rating.RaterID]bool, len(prevMal))
		for _, id := range prevMal {
			was[id] = true
		}
		for _, id := range e.manager.Malicious() {
			if !was[id] {
				newMal = append(newMal, id)
			}
		}
		if len(newMal) > 0 {
			newTrust = make(map[rating.RaterID]float64, len(newMal))
			for _, id := range newMal {
				newTrust[id] = e.manager.Trust(id)
			}
		}
	}
	e.trustMu.Unlock()
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if sp != nil {
		sp.sink.flagWindow(newMal, newTrust, end)
	}
	return nil
}
