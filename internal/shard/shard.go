// Package shard partitions the rating engine's per-object state across
// N independent shard workers. Objects are the unit of placement — a
// stable hash of the object ID picks the shard, so one object's
// time-sorted rating sequence (the signal the detector models) always
// lives whole in exactly one shard. Trust is global: raters span
// shards, so Procedure 2's records are folded across shards in a
// canonical order that keeps results bit-identical for any shard
// count.
package shard

import (
	"fmt"

	"repro/internal/rating"
)

// fnv64Offset and fnv64Prime are the FNV-1a 64-bit parameters.
const (
	fnv64Offset uint64 = 14695981039346656037
	fnv64Prime  uint64 = 1099511628211
)

// Hash64 is the stable FNV-1a 64-bit hash of key. It is the only hash
// the router uses, so shard placement never changes across runs,
// builds or platforms — recovery depends on replaying ratings into
// the same shard that logged them.
func Hash64(key []byte) uint64 {
	h := fnv64Offset
	for _, b := range key {
		h ^= uint64(b)
		h *= fnv64Prime
	}
	return h
}

// Index maps key to a shard in [0, n). n must be positive; Index
// panics otherwise (the router validates its shard count at
// construction, so a panic here is a programming error, not input).
func Index(key []byte, n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("shard: non-positive shard count %d", n))
	}
	return int(Hash64(key) % uint64(n))
}

// ShardFor places an object: the object ID's 8-byte little-endian
// encoding hashed into [0, n).
func ShardFor(obj rating.ObjectID, n int) int {
	v := uint64(int64(obj))
	var key [8]byte
	for i := 0; i < 8; i++ {
		key[i] = byte(v >> (8 * i))
	}
	return Index(key[:], n)
}

// KeyPoint maps an object to its point on the cluster keyspace ring:
// the low 32 bits of the same FNV-1a hash ShardFor uses. Cluster
// membership assigns each node a contiguous [lo, hi) range of this
// 2^32 space, so ownership — like shard placement — never moves
// across runs, builds or platforms.
func KeyPoint(obj rating.ObjectID) uint32 {
	v := uint64(int64(obj))
	var key [8]byte
	for i := 0; i < 8; i++ {
		key[i] = byte(v >> (8 * i))
	}
	return uint32(Hash64(key[:]))
}

// RaterPoint maps a rater to the same 2^32 ring. Trust state is
// replicated to every cluster node, but scatter-gather reads over the
// rater set (e.g. a merged /v1/malicious) still partition the work by
// rater point so each member answers a disjoint slice.
func RaterPoint(r rating.RaterID) uint32 {
	v := uint64(int64(r))
	var key [8]byte
	for i := 0; i < 8; i++ {
		key[i] = byte(v >> (8 * i))
	}
	return uint32(Hash64(key[:]))
}
