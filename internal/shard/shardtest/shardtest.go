// Package shardtest is the shard conformance harness: a seeded
// workload generator, a driver that replays a workload through any
// rating system implementation, and a canonical fingerprint of the
// externally observable state. The conformance contract is that the
// fingerprint — every per-window observation, every trust record,
// every aggregate, every detector verdict, printed to full float64
// precision — is byte-identical across shard counts and against the
// single-threaded core.System oracle.
package shardtest

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/rating"
)

// System is the surface the harness drives. *core.System,
// *core.SafeSystem and *shard.Engine all satisfy it.
type System interface {
	SubmitAll(rs []rating.Rating) error
	ProcessWindow(start, end float64) (core.ProcessReport, error)
	Aggregate(obj rating.ObjectID) (core.AggregateResult, error)
	TrustSnapshot() map[rating.RaterID]float64
	MaliciousRaters() []rating.RaterID
	Len() int
}

// Workload is a seeded multi-month rating scenario: honest raters
// track each object's true quality with noise while a malicious
// clique floods a target object with low ratings in coordinated
// bursts — the signal pattern the detector exists to catch.
type Workload struct {
	Seed      int64
	Objects   int
	Raters    int // honest raters; IDs [0, Raters)
	Malicious int // clique size; IDs [Raters, Raters+Malicious)
	Months    int
	PerMonth  int // honest ratings per month
	// BurstLen is the malicious clique's per-month burst size; zero
	// means 3×Malicious.
	BurstLen int
}

func (w Workload) withDefaults() Workload {
	if w.Objects == 0 {
		w.Objects = 5
	}
	if w.Raters == 0 {
		w.Raters = 20
	}
	if w.Malicious == 0 {
		w.Malicious = 4
	}
	if w.Months == 0 {
		w.Months = 3
	}
	if w.PerMonth == 0 {
		w.PerMonth = 400
	}
	if w.BurstLen == 0 {
		w.BurstLen = 3 * w.Malicious
	}
	return w
}

// Month is one maintenance period: the ratings submitted during it
// (in arrival order) and the window to process at its end.
type Month struct {
	Ratings    []rating.Rating
	Start, End float64
}

// Generate expands the workload into its months. Every rating in a
// month has a globally distinct time, so the stored per-object
// sequences — and therefore every downstream result — are independent
// of arrival order; the arrival order itself is a seeded shuffle, so
// batches interleave objects and shards the way concurrent traffic
// would.
func (w Workload) Generate() []Month {
	w = w.withDefaults()
	rng := randx.New(w.Seed)
	quality := make([]float64, w.Objects)
	for i := range quality {
		quality[i] = rng.Uniform(0.3, 0.9)
	}
	target := rating.ObjectID(rng.Intn(w.Objects))

	months := make([]Month, w.Months)
	for m := range months {
		start := 30 * float64(m)
		end := start + 30
		total := w.PerMonth + w.BurstLen
		// Distinct, sorted times strictly inside [start, end).
		times := make([]float64, total)
		for i := range times {
			times[i] = start + 30*(float64(i)+0.5)/float64(total)
		}
		rs := make([]rating.Rating, 0, total)
		for i := 0; i < w.PerMonth; i++ {
			obj := rating.ObjectID(rng.Intn(w.Objects))
			val := quality[obj] + rng.Normal(0, 0.08)
			rs = append(rs, rating.Rating{
				Rater:  rating.RaterID(rng.Intn(w.Raters)),
				Object: obj,
				Value:  clamp01(val),
			})
		}
		// The clique's burst: coordinated low ratings on the target.
		for i := 0; i < w.BurstLen; i++ {
			rs = append(rs, rating.Rating{
				Rater:  rating.RaterID(w.Raters + i%w.Malicious),
				Object: target,
				Value:  clamp01(rng.Uniform(0, 0.1)),
			})
		}
		// Assign the distinct times in submission-slot order, then
		// shuffle arrival order.
		for i := range rs {
			rs[i].Time = times[i]
		}
		rng.Shuffle(len(rs), func(i, j int) { rs[i], rs[j] = rs[j], rs[i] })
		months[m] = Month{Ratings: rs, Start: start, End: end}
	}
	return months
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Run replays the workload through sys month by month — submit the
// month's ratings, process its window — and returns the canonical
// trace: per-window observations and object verdicts, then the final
// fingerprint.
func Run(sys System, w Workload) (string, error) {
	return RunWithCheckpoints(sys, w, nil)
}

// RunWithCheckpoints is Run plus a hook invoked after each month's
// window. It turns the harness into a multi-node oracle: the
// two-node replication conformance test, for example, waits in the
// checkpoint for its follower to align at the month's barrier and
// requires its fingerprint to be byte-identical to the oracle's. A
// checkpoint error aborts the run.
func RunWithCheckpoints(sys System, w Workload, checkpoint func(month int) error) (string, error) {
	w = w.withDefaults()
	var b strings.Builder
	for m, month := range w.Generate() {
		if err := sys.SubmitAll(month.Ratings); err != nil {
			return "", fmt.Errorf("month %d: %w", m, err)
		}
		rep, err := sys.ProcessWindow(month.Start, month.End)
		if err != nil {
			return "", fmt.Errorf("month %d: %w", m, err)
		}
		renderReport(&b, m, rep)
		if checkpoint != nil {
			if err := checkpoint(m); err != nil {
				return "", fmt.Errorf("month %d checkpoint: %w", m, err)
			}
		}
	}
	fp, err := Fingerprint(sys, w.Objects)
	if err != nil {
		return "", err
	}
	b.WriteString(fp)
	return b.String(), nil
}

func renderReport(b *strings.Builder, m int, rep core.ProcessReport) {
	fmt.Fprintf(b, "window %d [%.17g,%.17g) objects=%d\n", m, rep.Start, rep.End, len(rep.Objects))
	for _, o := range rep.Objects {
		suspicious := 0
		for _, w := range o.Detection.Windows {
			if w.Suspicious {
				suspicious++
			}
		}
		fmt.Fprintf(b, "  object %d considered=%d filtered=%d windows=%d suspicious=%d degraded=%v\n",
			o.Object, o.Considered, o.Filtered, len(o.Detection.Windows), suspicious, o.Degraded)
	}
	ids := make([]rating.RaterID, 0, len(rep.Observations))
	for id := range rep.Observations {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		o := rep.Observations[id]
		fmt.Fprintf(b, "  rater %d n=%d f=%d s=%d mass=%.17g\n",
			id, o.N, o.Filtered, o.Suspicious, o.SuspicionMass)
	}
}

// Fingerprint renders sys's externally observable end state — rating
// count, full-precision trust per rater, malicious set, per-object
// aggregates — in a canonical order.
func Fingerprint(sys System, objects int) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "len=%d\n", sys.Len())
	snap := sys.TrustSnapshot()
	ids := make([]rating.RaterID, 0, len(snap))
	for id := range snap {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Fprintf(&b, "trust %d %.17g\n", id, snap[id])
	}
	fmt.Fprintf(&b, "malicious %v\n", sys.MaliciousRaters())
	for obj := 0; obj < objects; obj++ {
		res, err := sys.Aggregate(rating.ObjectID(obj))
		if errors.Is(err, rating.ErrUnknownObject) {
			fmt.Fprintf(&b, "aggregate %d none\n", obj)
			continue
		}
		if err != nil {
			return "", fmt.Errorf("aggregate object %d: %w", obj, err)
		}
		fmt.Fprintf(&b, "aggregate %d value=%.17g used=%d filtered=%d fellback=%v\n",
			obj, res.Value, res.Used, res.Filtered, res.FellBack)
	}
	return b.String(), nil
}
