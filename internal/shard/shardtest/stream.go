package shardtest

import (
	"fmt"
	"strings"

	"repro/internal/randx"
	"repro/internal/rating"
)

// Op is one step of an interleaved replay: either a submit chunk or a
// maintenance-window close. Exactly one field is set.
type Op struct {
	Ratings []rating.Rating
	Window  *[2]float64
}

// InterleavedOps expands the workload into a seeded interleaving of
// submit chunks and window closes. Each month's arrival stream is cut
// into random chunks and the month's window close lands at a random
// point in their midst — frequently before all of the month's ratings
// have arrived, exactly the race a live system sees when a maintenance
// boundary fires under traffic. The op sequence is the contract: two
// systems replaying it see identical submits and identical closes, so
// ratings a close missed are missed identically everywhere, and their
// traces must match byte for byte.
func (w Workload) InterleavedOps(seed int64) []Op {
	rng := randx.New(seed ^ 0x517ea3)
	var ops []Op
	for _, m := range w.Generate() {
		rs := m.Ratings
		var chunks [][]rating.Rating
		for i := 0; i < len(rs); {
			k := 1 + rng.Intn(64)
			if i+k > len(rs) {
				k = len(rs) - i
			}
			chunks = append(chunks, rs[i:i+k])
			i += k
		}
		// The close lands after at least 60% of the month's chunks, so
		// windows usually have most of their evidence but often not
		// all of it.
		minPos := 3 * len(chunks) / 5
		pos := minPos + rng.Intn(len(chunks)-minPos+1)
		win := [2]float64{m.Start, m.End}
		for i, c := range chunks {
			if i == pos {
				ops = append(ops, Op{Window: &win})
			}
			ops = append(ops, Op{Ratings: c})
		}
		if pos == len(chunks) {
			ops = append(ops, Op{Window: &win})
		}
	}
	return ops
}

// RunOps replays an op sequence through sys and returns the canonical
// trace: each window's report and a full state fingerprint at every
// close (not just the end), so a divergence is caught at the first
// window it appears in.
func RunOps(sys System, ops []Op, objects int) (string, error) {
	var b strings.Builder
	win := 0
	for i, op := range ops {
		if op.Window == nil {
			if err := sys.SubmitAll(op.Ratings); err != nil {
				return "", fmt.Errorf("op %d: %w", i, err)
			}
			continue
		}
		rep, err := sys.ProcessWindow(op.Window[0], op.Window[1])
		if err != nil {
			return "", fmt.Errorf("op %d: %w", i, err)
		}
		renderReport(&b, win, rep)
		win++
		fp, err := Fingerprint(sys, objects)
		if err != nil {
			return "", fmt.Errorf("op %d: %w", i, err)
		}
		b.WriteString(fp)
	}
	fp, err := Fingerprint(sys, objects)
	if err != nil {
		return "", err
	}
	b.WriteString(fp)
	return b.String(), nil
}
