package shard_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rating"
	"repro/internal/shard"
	"repro/internal/shard/shardtest"
)

// The soak: hammer a sharded engine through its batching router from
// many goroutines in seeded but nondeterministic arrival order, then
// cross-check every observable — trust, aggregates, detector-driven
// malicious set — against a single-threaded core.System oracle fed
// the same ratings sequentially. Run under -race this doubles as the
// engine's and router's data-race gate (`make race-soak`).
func TestConcurrentSoakMatchesOracle(t *testing.T) {
	const writers = 8
	w := shardtest.Workload{Seed: 99, Months: 3, PerMonth: 600}
	months := w.Generate()

	oracle, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := shard.NewEngine(core.Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	router, err := shard.NewRouter(shard.RouterConfig{
		Shards:    4,
		BatchSize: 64,
		Flush:     e.SubmitShard,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	for m, month := range months {
		// Oracle: sequential ingestion.
		if err := oracle.SubmitAll(month.Ratings); err != nil {
			t.Fatal(err)
		}

		// Engine: the month's ratings split across concurrent writers
		// submitting interleaved slices through the router. Every
		// rating has a distinct per-object time, so arrival order
		// cannot change the stored sequences.
		var wg sync.WaitGroup
		errs := make([]error, writers)
		for g := 0; g < writers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < len(month.Ratings); i += writers {
					hi := i + 1
					if err := router.Submit(month.Ratings[i:hi]); err != nil {
						errs[g] = err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		for g, err := range errs {
			if err != nil {
				t.Fatalf("month %d writer %d: %v", m, g, err)
			}
		}
		// Quiesce the router before the maintenance window, so the
		// window sees every acknowledged rating.
		if err := router.Flush(); err != nil {
			t.Fatal(err)
		}
		if e.Len() != oracle.Len() {
			t.Fatalf("month %d: engine has %d ratings, oracle %d", m, e.Len(), oracle.Len())
		}

		wantRep, err := oracle.ProcessWindow(month.Start, month.End)
		if err != nil {
			t.Fatal(err)
		}
		gotRep, err := e.ProcessWindow(month.Start, month.End)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotRep.Objects) != len(wantRep.Objects) {
			t.Fatalf("month %d: %d objects scanned, oracle %d",
				m, len(gotRep.Objects), len(wantRep.Objects))
		}
		for id, want := range wantRep.Observations {
			if got := gotRep.Observations[id]; got != want {
				t.Fatalf("month %d rater %d: observation %+v, oracle %+v", m, id, got, want)
			}
		}
	}

	want, err := shardtest.Fingerprint(oracle, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := shardtest.Fingerprint(e, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("soak fingerprint diverges from oracle:\n%s", firstDiff(want, got))
	}
}

// The shard-count sweep: the same seeded workload, submitted by
// concurrent writers in multi-rating chunks (so single submissions
// fan out across shards and ride different group commits), must
// fingerprint identically to the sequential oracle at every shard
// count. This is the lock-free ingest path's numerical-invisibility
// gate: ring queues, per-shard workers and atomic counters may change
// timing freely, never results.
func TestConcurrentSoakAcrossShardCounts(t *testing.T) {
	const (
		writers = 6
		chunk   = 3
	)
	w := shardtest.Workload{Seed: 1234, Months: 2, PerMonth: 500}
	months := w.Generate()

	oracle, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, month := range months {
		if err := oracle.SubmitAll(month.Ratings); err != nil {
			t.Fatal(err)
		}
		if _, err := oracle.ProcessWindow(month.Start, month.End); err != nil {
			t.Fatal(err)
		}
	}
	want, err := shardtest.Fingerprint(oracle, 5)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 4, 8} {
		e, err := shard.NewEngine(core.Config{}, shards)
		if err != nil {
			t.Fatal(err)
		}
		router, err := shard.NewRouter(shard.RouterConfig{
			Shards:    shards,
			BatchSize: 48,
			Flush:     e.SubmitShard,
		})
		if err != nil {
			t.Fatal(err)
		}
		for m, month := range months {
			var wg sync.WaitGroup
			errs := make([]error, writers)
			for g := 0; g < writers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := g * chunk; i < len(month.Ratings); i += writers * chunk {
						hi := i + chunk
						if hi > len(month.Ratings) {
							hi = len(month.Ratings)
						}
						if err := router.Submit(month.Ratings[i:hi]); err != nil {
							errs[g] = err
							return
						}
					}
				}(g)
			}
			wg.Wait()
			for g, err := range errs {
				if err != nil {
					t.Fatalf("%d shards month %d writer %d: %v", shards, m, g, err)
				}
			}
			if err := router.Flush(); err != nil {
				t.Fatal(err)
			}
			if _, err := e.ProcessWindow(month.Start, month.End); err != nil {
				t.Fatal(err)
			}
		}
		if err := router.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := shardtest.Fingerprint(e, 5)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%d shards: concurrent soak diverges from oracle:\n%s",
				shards, firstDiff(want, got))
		}
	}
}

// Concurrent readers during ingest must never trip the race detector
// or observe torn state: aggregates, trust reads and snapshots run
// while writers are streaming.
func TestSoakReadersDuringIngest(t *testing.T) {
	w := shardtest.Workload{Seed: 5, Months: 1, PerMonth: 400}
	month := w.Generate()[0]

	e, err := shard.NewEngine(core.Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	router, err := shard.NewRouter(shard.RouterConfig{Shards: 4, BatchSize: 32, Flush: e.SubmitShard})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				case <-time.After(200 * time.Microsecond):
					// Paced, so the readers probe concurrently without
					// starving the writers on a single-core box.
				}
				_ = e.Len()
				_ = e.TrustSnapshot()
				_, _ = e.Aggregate(rating.ObjectID(0))
				_ = e.MaliciousRaters()
			}
		}()
	}

	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := g; i < len(month.Ratings); i += 4 {
				if err := router.Submit(month.Ratings[i : i+1]); err != nil {
					t.Errorf("writer %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	writers.Wait()
	close(done)
	readers.Wait()
	if err := router.Close(); err != nil {
		t.Fatal(err)
	}
	if e.Len() != len(month.Ratings) {
		t.Fatalf("engine has %d ratings, want %d", e.Len(), len(month.Ratings))
	}
}
