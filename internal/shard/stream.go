package shard

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/collusion"
	"repro/internal/detector"
	"repro/internal/rating"
)

// StreamConfig configures the engine's online detection path: a
// per-(shard, object) detector.Stream fed from the shard workers at
// submit time, continuous suspicion accrual into an AlertLog, an
// optional incremental collusion graph, and optional automatic
// maintenance-window closes driven by the rating clock.
//
// The streaming path is advisory: it never touches the rating stores
// or the trust manager, so the engine's trust vector, malicious list
// and fingerprints stay byte-identical to a batch core.System fed the
// same ratings and window closes (the conformance harness pins this).
// Authoritative charging still happens in ProcessWindow — the
// streaming path decides *when* windows close (MaintainEvery) and
// raises alerts in between.
type StreamConfig struct {
	// Detector is the per-object online config; count windows only
	// (zero Mode defaults to count, zero Size/Step to 50/25).
	Detector detector.Config
	// AlertThreshold is the accrued suspicion at which a rater is
	// alerted. Zero means 0.5.
	AlertThreshold float64
	// Collusion, when non-nil, rides the incremental collusion
	// accumulator on the streaming path and raises collusion alerts.
	Collusion *collusion.Config
	// CollusionEvery is the snapshot cadence in accepted ratings.
	// Zero means 512.
	CollusionEvery int
	// MaintainEvery, when positive, closes an authoritative
	// maintenance window [k·E, (k+1)·E) as soon as a rating at or past
	// its end arrives, by invoking OnWindowDue from a pump goroutine.
	MaintainEvery float64
	// ResumeAfter is the window end through which authoritative
	// charging is already durable (recovery); boundaries at or before
	// it are not re-fired, later ones catch up during EnableStreaming.
	ResumeAfter float64
	// OnWindowDue performs the authoritative window close (typically
	// journal/engine ProcessWindow plus cache invalidation). Calls are
	// serialized and strictly ordered by window start.
	OnWindowDue func(start, end float64)
	// QueueDepth bounds each shard's pending batch queue; when full,
	// new batches are shed (counted, never blocking ingest). Zero
	// means 1024.
	QueueDepth int
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.AlertThreshold == 0 {
		c.AlertThreshold = 0.5
	}
	if c.CollusionEvery == 0 {
		c.CollusionEvery = 512
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 1024
	}
	return c
}

// objStream is one object's online detector plus its accrual wiring.
type objStream struct {
	ds *detector.Stream
}

// streamShard is one shard's streaming state: a bounded queue of
// observed batches and the per-object streams its pump owns. objs is
// touched only by the pump (and by the rebuild pass, which runs
// before pumps start).
type streamShard struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending int
	closed  bool
	ch      chan []rating.Rating
	objs    map[rating.ObjectID]*objStream
}

// Streaming is the engine's online detection state. Obtain it from
// Engine.EnableStreaming; read alerts via Alerts().
type Streaming struct {
	cfg    StreamConfig
	engine *Engine
	sink   *AlertLog
	shards []*streamShard
	wg     sync.WaitGroup

	// timeMu guards the rating clock's high-water mark and the next
	// maintenance boundary; fireMu serializes boundary firing so
	// windows close in order.
	timeMu  sync.Mutex
	maxTime float64
	nextDue float64
	fireMu  sync.Mutex

	collMu   sync.Mutex
	coll     *collusion.Accumulator
	collSeen int

	pushed      atomic.Int64
	lateDropped atomic.Int64
	shed        atomic.Int64
}

// StreamStats is a point-in-time counter snapshot of the streaming
// path.
type StreamStats struct {
	// Pushed counts ratings accepted into per-object streams.
	Pushed int64
	// LateDropped counts ratings that arrived behind their object's
	// stream clock and were skipped (advisory path only; the store
	// keeps them and batch windows still see them).
	LateDropped int64
	// Shed counts ratings dropped because a shard's queue was full.
	Shed int64
	// Alerts is the alert log length.
	Alerts int
}

// EnableStreaming switches the online detection path on: it rebuilds
// per-object streams from the ratings already stored (recovery), fires
// any maintenance boundaries past ResumeAfter that the stored ratings
// already crossed, then starts one pump goroutine per shard. It must
// be called before the engine serves overlapping traffic and at most
// once; the returned Streaming is also available via Streaming().
func (e *Engine) EnableStreaming(cfg StreamConfig) (*Streaming, error) {
	cfg = cfg.withDefaults()
	dcfg := cfg.Detector
	if _, err := detector.NewStream(dcfg); err != nil {
		return nil, fmt.Errorf("shard: streaming: %w", err)
	}
	if cfg.AlertThreshold < 0 || math.IsNaN(cfg.AlertThreshold) {
		return nil, fmt.Errorf("shard: streaming: alert threshold %g", cfg.AlertThreshold)
	}
	if cfg.MaintainEvery < 0 || math.IsNaN(cfg.MaintainEvery) || math.IsInf(cfg.MaintainEvery, 0) {
		return nil, fmt.Errorf("shard: streaming: maintain every %g", cfg.MaintainEvery)
	}
	s := &Streaming{
		cfg:    cfg,
		engine: e,
		sink:   newAlertLog(cfg.AlertThreshold, e.metrics),
		shards: make([]*streamShard, len(e.states)),
	}
	s.maxTime = math.Inf(-1)
	s.nextDue = cfg.MaintainEvery
	if cfg.MaintainEvery > 0 && cfg.ResumeAfter > 0 {
		s.nextDue = cfg.ResumeAfter + cfg.MaintainEvery
	}
	if cfg.Collusion != nil {
		acc, err := collusion.NewAccumulator(*cfg.Collusion)
		if err != nil {
			return nil, fmt.Errorf("shard: streaming: %w", err)
		}
		s.coll = acc
	}
	for i := range s.shards {
		ss := &streamShard{
			ch:   make(chan []rating.Rating, cfg.QueueDepth),
			objs: make(map[rating.ObjectID]*objStream),
		}
		ss.cond = sync.NewCond(&ss.mu)
		s.shards[i] = ss
	}

	// Rebuild from the stores under all shard locks, then publish the
	// pointer before releasing them: every submit completes either
	// entirely before (its ratings are in the store the rebuild reads)
	// or entirely after (it observes the published pointer), so no
	// rating is double-pushed or missed.
	e.lockAll()
	// Raters the durable trust state already holds malicious were
	// window-flagged by pre-restart closes; seed the flag set (no
	// alerts) so recovery matches a never-crashed run's flag state.
	s.sink.seedWindowFlags(e.MaliciousRaters())
	for i, st := range e.states {
		ss := s.shards[i]
		for _, obj := range st.store.Objects() {
			rs, err := st.store.ForObject(obj)
			if err != nil {
				continue // unreachable: Objects() lists known objects
			}
			pushed := 0
			for _, r := range rs {
				if s.pushOne(i, ss, r) {
					pushed++
				}
			}
			s.countPushed(i, pushed)
			s.collAccumulate(rs)
			if n := len(rs); n > 0 {
				s.noteTime(rs[n-1].Time)
			}
		}
	}
	if !e.streaming.CompareAndSwap(nil, s) {
		e.unlockAll()
		return nil, fmt.Errorf("shard: streaming already enabled")
	}
	e.unlockAll()

	// Catch up maintenance boundaries the stored ratings had already
	// crossed but whose close never became durable before a crash.
	s.fireDue()
	if s.coll != nil {
		s.maybeSnapshotCollusion(true)
	}
	for i := range s.shards {
		s.wg.Add(1)
		go s.pump(i)
	}
	return s, nil
}

// Streaming returns the engine's online detection state, or nil when
// EnableStreaming has not been called.
func (e *Engine) Streaming() *Streaming {
	return e.streaming.Load()
}

// observe enqueues one accepted shard batch for the shard's pump. It
// is called with the shard's lock held (order there fixes tie order),
// so it must never block: full queues shed.
func (s *Streaming) observe(shard int, rs []rating.Rating) {
	ss := s.shards[shard]
	cp := make([]rating.Rating, len(rs))
	copy(cp, rs)
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return
	}
	select {
	case ss.ch <- cp:
		ss.pending++
	default:
		s.shed.Add(int64(len(rs)))
		s.engine.metrics.streamShed(shard, len(rs))
	}
	ss.mu.Unlock()
}

func (s *Streaming) pump(shard int) {
	defer s.wg.Done()
	ss := s.shards[shard]
	for batch := range ss.ch {
		s.consumeBatch(shard, ss, batch)
		ss.mu.Lock()
		ss.pending--
		if ss.pending == 0 {
			ss.cond.Broadcast()
		}
		ss.mu.Unlock()
	}
}

func (s *Streaming) consumeBatch(shard int, ss *streamShard, batch []rating.Rating) {
	maxT := math.Inf(-1)
	pushed := 0
	for _, r := range batch {
		if s.pushOne(shard, ss, r) {
			pushed++
		}
		if r.Time > maxT {
			maxT = r.Time
		}
	}
	s.countPushed(shard, pushed)
	s.collAccumulate(batch)
	s.noteTime(maxT)
	s.fireDue()
	s.maybeSnapshotCollusion(false)
}

// pushOne feeds one rating to its object's stream and reports whether
// the stream accepted it. Ratings behind the object's stream clock are
// skipped and counted: the advisory path holds no reorder buffer, and
// the store — which batch windows read — keeps them regardless.
// Acceptance counters are the caller's to batch via countPushed; the
// rare late drops are counted here.
func (s *Streaming) pushOne(shard int, ss *streamShard, r rating.Rating) bool {
	os := ss.objs[r.Object]
	if os == nil {
		ds, err := detector.NewStream(s.cfg.Detector)
		if err != nil {
			return false // unreachable: config validated in EnableStreaming
		}
		obj := r.Object
		ds.OnAccrue = func(id rating.RaterID, delta, at float64) {
			s.sink.accrueStream(id, obj, delta, at)
		}
		os = &objStream{ds: ds}
		ss.objs[r.Object] = os
	}
	if _, err := os.ds.Push(r); err != nil {
		s.lateDropped.Add(1)
		s.engine.metrics.streamLate(shard)
		return false
	}
	return true
}

// countPushed folds one batch's accepted-rating count into the stream
// counters — one pair of atomic updates per batch, not per rating.
func (s *Streaming) countPushed(shard, n int) {
	if n <= 0 {
		return
	}
	s.pushed.Add(int64(n))
	s.engine.metrics.streamPushed(shard, n)
}

func (s *Streaming) collAccumulate(rs []rating.Rating) {
	if s.coll == nil || len(rs) == 0 {
		return
	}
	s.collMu.Lock()
	s.coll.Accumulate(rs...)
	s.collSeen += len(rs)
	s.collMu.Unlock()
}

// maybeSnapshotCollusion snapshots the incremental collusion graph
// when the cadence has elapsed (or unconditionally on force, used once
// after a rebuild) and raises alerts for raters at or above the
// threshold.
func (s *Streaming) maybeSnapshotCollusion(force bool) {
	if s.coll == nil {
		return
	}
	s.collMu.Lock()
	if !force && s.collSeen < s.cfg.CollusionEvery {
		s.collMu.Unlock()
		return
	}
	if s.coll.Len() == 0 {
		s.collMu.Unlock()
		return
	}
	s.collSeen = 0
	rep := s.coll.Snapshot()
	s.collMu.Unlock()

	s.timeMu.Lock()
	at := s.maxTime
	s.timeMu.Unlock()
	s.sink.flagCollusion(rep.Suspicion, at)
}

func (s *Streaming) noteTime(t float64) {
	if math.IsInf(t, -1) {
		return
	}
	s.timeMu.Lock()
	if t > s.maxTime {
		s.maxTime = t
	}
	s.timeMu.Unlock()
}

// fireDue closes every maintenance window whose boundary the rating
// clock has passed, in order. fireMu serializes concurrent pumps;
// nextDue advances under timeMu inside the fireMu region, so windows
// never fire twice or out of order.
func (s *Streaming) fireDue() {
	if s.cfg.MaintainEvery <= 0 || s.cfg.OnWindowDue == nil {
		return
	}
	s.fireMu.Lock()
	defer s.fireMu.Unlock()
	for {
		s.timeMu.Lock()
		due := s.maxTime >= s.nextDue
		var start, end float64
		if due {
			end = s.nextDue
			start = end - s.cfg.MaintainEvery
			s.nextDue += s.cfg.MaintainEvery
		}
		s.timeMu.Unlock()
		if !due {
			return
		}
		s.cfg.OnWindowDue(start, end)
	}
}

// Alerts returns the engine's alert log.
func (s *Streaming) Alerts() *AlertLog { return s.sink }

// Stats snapshots the streaming counters.
func (s *Streaming) Stats() StreamStats {
	s.sink.mu.Lock()
	alerts := len(s.sink.alerts)
	s.sink.mu.Unlock()
	return StreamStats{
		Pushed:      s.pushed.Load(),
		LateDropped: s.lateDropped.Load(),
		Shed:        s.shed.Load(),
		Alerts:      alerts,
	}
}

// Sync blocks until every batch observed so far has been pumped
// through the streams — the test and benchmark barrier.
func (s *Streaming) Sync() {
	for _, ss := range s.shards {
		ss.mu.Lock()
		for ss.pending > 0 {
			ss.cond.Wait()
		}
		ss.mu.Unlock()
	}
}

// Close stops the pumps after draining every queued batch. The engine
// keeps serving; only the advisory path stops. Close is idempotent.
func (s *Streaming) Close() {
	for _, ss := range s.shards {
		ss.mu.Lock()
		if !ss.closed {
			ss.closed = true
			close(ss.ch)
		}
		ss.mu.Unlock()
	}
	s.wg.Wait()
}

// Fingerprint renders the streaming suspicion state in canonical
// order at full float precision: per-rater AR-stream suspicion totals
// folded over (rater, object) ascending — an order-free fold, so the
// result is independent of how shard pumps interleaved — plus the
// stream- and window-flagged sets and the late-drop counter. Collusion
// flags are excluded: their snapshot cadence is scheduling-dependent.
// Callers should Sync() first.
func (s *Streaming) Fingerprint() string {
	s.sink.mu.Lock()
	keys := make([]raterObj, 0, len(s.sink.byRaterObj))
	for k := range s.sink.byRaterObj {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rater != keys[j].rater {
			return keys[i].rater < keys[j].rater
		}
		return keys[i].obj < keys[j].obj
	})
	totals := make(map[rating.RaterID]float64)
	var order []rating.RaterID
	for _, k := range keys {
		if _, ok := totals[k.rater]; !ok {
			order = append(order, k.rater)
		}
		totals[k.rater] += s.sink.byRaterObj[k]
	}
	var streamFlagged, windowFlagged []rating.RaterID
	for k := range s.sink.flagged {
		switch k.source {
		case AlertSourceStream:
			streamFlagged = append(streamFlagged, k.rater)
		case AlertSourceWindow:
			windowFlagged = append(windowFlagged, k.rater)
		}
	}
	s.sink.mu.Unlock()
	sort.Slice(streamFlagged, func(i, j int) bool { return streamFlagged[i] < streamFlagged[j] })
	sort.Slice(windowFlagged, func(i, j int) bool { return windowFlagged[i] < windowFlagged[j] })

	var b strings.Builder
	for _, id := range order {
		fmt.Fprintf(&b, "stream-suspicion %d %.17g\n", id, totals[id])
	}
	fmt.Fprintf(&b, "stream-flagged %v\n", streamFlagged)
	fmt.Fprintf(&b, "window-flagged %v\n", windowFlagged)
	fmt.Fprintf(&b, "late-dropped %d\n", s.lateDropped.Load())
	return b.String()
}
