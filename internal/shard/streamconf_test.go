package shard_test

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/collusion"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/rating"
	"repro/internal/shard"
	"repro/internal/shard/shardtest"
)

// streamConfCfg is the authoritative pipeline config for the streaming
// conformance runs: both aux window detectors on, so the fold with the
// most cross-shard surface is in play.
func streamConfCfg() core.Config {
	return core.Config{
		Collusion: &collusion.Config{MinSimilarity: 0.6, MinCoRatings: 2, MinGroupSize: 2},
		Iterative: &detector.IterativeConfig{},
	}
}

func streamDetectCfg() shard.StreamConfig {
	return shard.StreamConfig{
		Detector:       detector.Config{Size: 30, Step: 15, Threshold: 0.08},
		AlertThreshold: 0.3,
		Collusion:      &collusion.Config{MinSimilarity: 0.6, MinCoRatings: 2, MinGroupSize: 2},
		CollusionEvery: 256,
	}
}

// TestStreamConformance is the streaming-vs-batch contract: replaying
// an arbitrary seeded interleaving of submit chunks and window closes
// through engines with the online detection path enabled produces a
// trace — every window observation, trust record, malicious list and
// aggregate at every close, at full float precision — byte-identical
// to a batch core.System oracle with no streaming at all, at 1, 2, 4
// and 8 shards, with both aux window detectors enabled. The advisory
// streaming state itself must also be shard-count invariant.
func TestStreamConformance(t *testing.T) {
	for _, seed := range []int64{2, 13, 31} {
		w := shardtest.Workload{Seed: seed, Objects: 5}
		ops := w.InterleavedOps(seed)

		oracle, err := core.NewSystem(streamConfCfg())
		if err != nil {
			t.Fatal(err)
		}
		want, err := shardtest.RunOps(oracle, ops, 5)
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}

		streamFP := ""
		for _, shards := range []int{1, 2, 4, 8} {
			e, err := shard.NewEngine(streamConfCfg(), shards)
			if err != nil {
				t.Fatal(err)
			}
			s, err := e.EnableStreaming(streamDetectCfg())
			if err != nil {
				t.Fatal(err)
			}
			got, err := shardtest.RunOps(e, ops, 5)
			if err != nil {
				t.Fatalf("seed %d shards %d: %v", seed, shards, err)
			}
			if got != want {
				t.Fatalf("seed %d: %d-shard streaming trace diverges from batch oracle:\n%s",
					seed, shards, firstDiff(want, got))
			}
			s.Sync()
			fp := s.Fingerprint()
			if streamFP == "" {
				streamFP = fp
			} else if fp != streamFP {
				t.Fatalf("seed %d: %d-shard stream state diverges:\n%s",
					seed, shards, firstDiff(streamFP, fp))
			}
			if s.Stats().Pushed == 0 {
				t.Fatalf("seed %d shards %d: streaming path saw no ratings", seed, shards)
			}
			s.Close()
		}
		if streamFP == "" {
			t.Fatalf("seed %d: no stream fingerprint collected", seed)
		}
	}
}

// TestStreamConformanceSoak races concurrent router-fed ingest against
// the pump goroutines with streaming (and both aux detectors) enabled,
// then closes the months' windows and requires the trust trace to
// stay byte-identical to the sequential batch oracle — the proof that
// the advisory path perturbs nothing even under contention. Run under
// -race by `make stream-conformance`.
func TestStreamConformanceSoak(t *testing.T) {
	const writers = 16
	w := shardtest.Workload{Seed: 77, Objects: 5}
	months := w.Generate()

	oracle, err := core.NewSystem(streamConfCfg())
	if err != nil {
		t.Fatal(err)
	}
	e, err := shard.NewEngine(streamConfCfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.EnableStreaming(streamDetectCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	router, err := shard.NewRouter(shard.RouterConfig{
		Shards:    4,
		BatchSize: 64,
		Flush:     e.SubmitShard,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	for m, month := range months {
		if err := oracle.SubmitAll(month.Ratings); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, writers)
		for g := 0; g < writers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < len(month.Ratings); i += writers {
					if err := router.Submit(month.Ratings[i : i+1]); err != nil {
						errs[g] = err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		for g, err := range errs {
			if err != nil {
				t.Fatalf("month %d writer %d: %v", m, g, err)
			}
		}
		if err := router.Flush(); err != nil {
			t.Fatal(err)
		}
		wantRep, err := oracle.ProcessWindow(month.Start, month.End)
		if err != nil {
			t.Fatal(err)
		}
		gotRep, err := e.ProcessWindow(month.Start, month.End)
		if err != nil {
			t.Fatal(err)
		}
		for id, want := range wantRep.Observations {
			if got := gotRep.Observations[id]; got != want {
				t.Fatalf("month %d rater %d: observation %+v, oracle %+v", m, id, got, want)
			}
		}
	}
	s.Sync()
	want, err := shardtest.Fingerprint(oracle, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := shardtest.Fingerprint(e, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("streaming engine diverged from oracle under concurrent ingest:\n%s", firstDiff(want, got))
	}
	if s.Stats().Pushed == 0 {
		t.Fatal("streaming path saw no ratings")
	}
}

// TestStreamAlertsFlagClique checks the end the user sees: with a
// maintenance schedule driven by the streaming path itself, the
// workload's malicious clique raises stream alerts before any window
// closes, and window alerts once charging catches up.
func TestStreamAlertsFlagClique(t *testing.T) {
	w := shardtest.Workload{Seed: 5, Objects: 5, Raters: 20, Malicious: 4, Months: 3, PerMonth: 400, BurstLen: 60}
	months := w.Generate()

	e, err := shard.NewEngine(core.Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	windows := make(chan [2]float64, 16)
	cfg := streamDetectCfg()
	cfg.MaintainEvery = 30
	cfg.OnWindowDue = func(start, end float64) {
		if _, err := e.ProcessWindow(start, end); err != nil {
			t.Errorf("window [%g,%g): %v", start, end, err)
		}
		windows <- [2]float64{start, end}
	}
	s, err := e.EnableStreaming(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Submit in time order — the live streaming regime — so the online
	// detector sees every rating.
	for _, month := range months {
		rs := append([]rating.Rating(nil), month.Ratings...)
		sort.Slice(rs, func(i, j int) bool { return rs[i].Time < rs[j].Time })
		if err := e.SubmitAll(rs); err != nil {
			t.Fatal(err)
		}
	}
	s.Sync()

	// The streaming clock crossed at least the first two month
	// boundaries (the last month's end has no later rating to prove
	// it is over) and fired them in order.
	if len(windows) < 2 {
		t.Fatalf("%d auto windows fired", len(windows))
	}
	prevEnd := 0.0
	for len(windows) > 0 {
		win := <-windows
		if win[0] != prevEnd {
			t.Fatalf("window [%g,%g) fired after end %g", win[0], win[1], prevEnd)
		}
		prevEnd = win[1]
	}

	alerts, next := s.Alerts().Alerts(0)
	if next != uint64(len(alerts)) || len(alerts) == 0 {
		t.Fatalf("alerts=%d next=%d", len(alerts), next)
	}
	bySource := map[string][]shard.Alert{}
	for i, a := range alerts {
		if a.Seq != uint64(i+1) {
			t.Fatalf("alert %d has seq %d", i, a.Seq)
		}
		bySource[a.Source] = append(bySource[a.Source], a)
	}
	// The online path must raise its first alert before the first
	// authoritative window ever closes — the whole point of streaming
	// detection — and window alerts must land exactly at closes.
	stream := bySource[shard.AlertSourceStream]
	if len(stream) == 0 {
		t.Fatalf("no stream alerts; alerts: %+v", alerts)
	}
	if first := stream[0].FirstFlagged; first >= 30 {
		t.Fatalf("first stream alert at t=%g, after the first window close", first)
	}
	if len(bySource[shard.AlertSourceWindow]) == 0 {
		t.Fatalf("no window alerts; alerts: %+v", alerts)
	}
	for _, a := range bySource[shard.AlertSourceWindow] {
		if a.FirstFlagged != 30 && a.FirstFlagged != 60 && a.FirstFlagged != 90 {
			t.Fatalf("window alert timestamped %g, not a window end", a.FirstFlagged)
		}
	}
	// The clique must be caught by at least one detection source.
	clique := false
	for _, a := range alerts {
		if int(a.Rater) >= w.Raters {
			clique = true
			break
		}
	}
	if !clique {
		t.Fatalf("no clique rater alerted; alerts: %+v", alerts)
	}
	// Alerts are flag events, not live state: a rater whose trust
	// recovers later stays alerted, so the final malicious list need
	// not cover every window alert — but it must not be empty when
	// window alerts fired.
	if len(e.MaliciousRaters()) == 0 {
		t.Fatal("window alerts fired but the malicious list is empty")
	}
}
