// Package signal implements autoregressive (AR) all-pole signal
// modeling — the paper's core instrument. Procedure 1 fits an AR model
// to each window of ratings with the covariance method (Hayes,
// Statistical Digital Signal Processing and Modeling, 1996; the Matlab
// covm the paper cites) and reads the normalized model error: honest
// ratings are noise-like and model poorly (high error), collaborative
// ratings inject structure and model well (low error).
//
// Yule-Walker (autocorrelation method via Levinson-Durbin) and Burg
// estimators are provided as ablation alternatives.
package signal

import (
	"errors"
	"fmt"

	"repro/internal/mathx"
	"repro/internal/stat"
)

// Method selects the AR parameter estimator.
type Method int

const (
	// MethodCovariance is the covariance method the paper uses: exact
	// least-squares prediction over the window, no windowing bias.
	MethodCovariance Method = iota + 1
	// MethodYuleWalker is the autocorrelation method solved with
	// Levinson-Durbin; guaranteed stable, biased on short windows.
	MethodYuleWalker
	// MethodBurg is Burg's harmonic-mean lattice estimator; stable and
	// accurate on short windows.
	MethodBurg
)

// String returns the estimator name.
func (m Method) String() string {
	switch m {
	case MethodCovariance:
		return "covariance"
	case MethodYuleWalker:
		return "yule-walker"
	case MethodBurg:
		return "burg"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// ErrTooShort is returned when a window has too few samples for the
// requested model order.
var ErrTooShort = errors.New("signal: window too short for model order")

// Options controls an AR fit.
type Options struct {
	// Method selects the estimator. Zero value means MethodCovariance.
	Method Method
	// Demean subtracts the window mean before fitting. The paper's
	// Matlab pipeline fits raw ratings (a near-DC signal), which is what
	// produces its small absolute error values; demeaning is the
	// theoretically cleaner x(t)−E[x(t)] view and is offered for the
	// ablation bench.
	Demean bool
	// Ridge is the relative diagonal loading applied to the covariance
	// normal equations (λ = Ridge·c(0,0)), which keeps degenerate
	// windows solvable. Zero means the default 1e-9.
	Ridge float64
}

// Model is a fitted all-pole model. The full coefficient vector is
// [1, Coeffs[0], ..., Coeffs[p-1]] as in Procedure 1's
// a = [1, a(1), ..., a(p)].
type Model struct {
	Method Method
	Order  int
	// Coeffs holds a(1..p).
	Coeffs []float64
	// ErrPower is the residual prediction-error power (sum of squared
	// residuals for covariance/Burg, model error power for Yule-Walker).
	ErrPower float64
	// NormalizedError is the paper's e(k) in (0, 1]: residual energy
	// divided by signal energy. Low values mean the window is highly
	// predictable — the collusion signature.
	NormalizedError float64
	// Energy is the signal energy the error was normalized by.
	Energy float64
}

// Workspace holds the scratch one AR fit needs — the covariance
// normal-equation matrix, its right-hand side, the solver scratch, and
// the demean/Burg residual buffers — so that a caller fitting thousands
// of windows (the detector hot path) allocates only each fit's returned
// coefficient slice. The zero value is ready to use; buffers grow on
// first use and are reused afterwards.
//
// A Workspace is not safe for concurrent use: one Workspace per
// goroutine, never shared (parallel.MapLocal builds exactly that).
type Workspace struct {
	order int
	c     [][]float64 // (p+1)×(p+1) covariance entries c(j,k)
	cback []float64
	a     [][]float64 // p×p normal matrix
	aback []float64
	b, x  []float64 // RHS and solution
	solve mathx.SolveWorkspace

	demeaned []float64 // demean scratch
	bf, bb   []float64 // Burg forward/backward residuals
	bprev    []float64 // Burg previous-order coefficients
	bcur     []float64 // Burg current-order coefficients
}

// NewWorkspace returns an empty Workspace (equivalent to new(Workspace);
// provided for symmetry with the other packages' constructors).
func NewWorkspace() *Workspace { return &Workspace{} }

// ensureOrder shapes the order-dependent buffers, allocating only when
// the model order changes.
func (ws *Workspace) ensureOrder(p int) {
	if ws.order == p && ws.c != nil {
		return
	}
	ws.cback = growFloats(ws.cback, (p+1)*(p+1))
	ws.c = shapeMatrix(ws.c, ws.cback, p+1)
	ws.aback = growFloats(ws.aback, p*p)
	ws.a = shapeMatrix(ws.a, ws.aback, p)
	ws.b = growFloats(ws.b, p)
	ws.x = growFloats(ws.x, p)
	ws.order = p
}

// growFloats returns a length-n slice, reusing buf's backing array when
// it is large enough.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// shapeMatrix carves n rows of n columns out of back, reusing the row
// header slice when possible.
func shapeMatrix(rows [][]float64, back []float64, n int) [][]float64 {
	if cap(rows) < n {
		rows = make([][]float64, n)
	}
	rows = rows[:n]
	for i := range rows {
		rows[i] = back[i*n : (i+1)*n : (i+1)*n]
	}
	return rows
}

// Fit estimates an AR(p) model of x using opts. The window must contain
// at least 2p+1 samples (covariance/Burg) or p+1 samples (Yule-Walker);
// shorter windows return ErrTooShort.
func Fit(x []float64, order int, opts Options) (Model, error) {
	return FitWS(x, order, opts, nil)
}

// FitWS is Fit with an explicit scratch workspace: repeated fits through
// the same Workspace allocate only each Model's coefficient slice. A nil
// ws uses a transient workspace (exactly Fit's behavior). The numbers
// produced are bit-identical to Fit's.
func FitWS(x []float64, order int, opts Options, ws *Workspace) (Model, error) {
	if order < 1 {
		return Model{}, fmt.Errorf("signal: model order %d", order)
	}
	method := opts.Method
	if method == 0 {
		method = MethodCovariance
	}
	if ws == nil {
		ws = &Workspace{}
	}
	work := x
	if opts.Demean {
		ws.demeaned = growFloats(ws.demeaned, len(x))
		m := stat.Mean(x)
		for i, v := range x {
			ws.demeaned[i] = v - m
		}
		work = ws.demeaned
	}
	switch method {
	case MethodCovariance:
		return fitCovariance(work, order, opts.Ridge, ws)
	case MethodYuleWalker:
		return fitYuleWalker(work, order)
	case MethodBurg:
		return fitBurg(work, order, ws)
	default:
		return Model{}, fmt.Errorf("signal: unknown method %d", int(method))
	}
}

// fitCovariance implements the covariance method: minimize
// Σ_{n=p}^{N-1} (x(n) + Σ_k a(k) x(n−k))² exactly, by solving the
// covariance normal equations Σ_k a(k) c(j,k) = −c(j,0), j = 1..p with
// c(j,k) = Σ_{n=p}^{N-1} x(n−j) x(n−k).
func fitCovariance(x []float64, p int, ridge float64, ws *Workspace) (Model, error) {
	n := len(x)
	if n < 2*p+1 {
		return Model{}, fmt.Errorf("covariance order %d with %d samples: %w", p, n, ErrTooShort)
	}
	if ridge <= 0 {
		ridge = 1e-9
	}
	ws.ensureOrder(p)

	// c[j][k] for j,k in 0..p.
	c := ws.c
	for j := 0; j <= p; j++ {
		for k := j; k <= p; k++ {
			var s float64
			for i := p; i < n; i++ {
				s += x[i-j] * x[i-k]
			}
			c[j][k], c[k][j] = s, s
		}
	}

	energy := c[0][0]
	if energy <= 1e-15 {
		// Zero-energy window: identically zero signal, perfectly
		// "modelled" by the zero predictor.
		return Model{
			Method: MethodCovariance,
			Order:  p,
			Coeffs: make([]float64, p),
		}, nil
	}

	a, b := ws.a, ws.b
	for j := 1; j <= p; j++ {
		for k := 1; k <= p; k++ {
			a[j-1][k-1] = c[j][k]
		}
		b[j-1] = -c[j][0]
	}
	if err := mathx.RidgeSymSolveInto(ws.x, a, b, ridge*energy, &ws.solve); err != nil {
		return Model{}, fmt.Errorf("covariance normal equations: %w", err)
	}
	coeffs := append(make([]float64, 0, p), ws.x...)

	errPower := energy
	for k := 1; k <= p; k++ {
		errPower += coeffs[k-1] * c[0][k]
	}
	if errPower < 0 {
		errPower = 0
	}
	return Model{
		Method:          MethodCovariance,
		Order:           p,
		Coeffs:          coeffs,
		ErrPower:        errPower,
		NormalizedError: mathx.Clamp(errPower/energy, 0, 1),
		Energy:          energy,
	}, nil
}

func fitYuleWalker(x []float64, p int) (Model, error) {
	n := len(x)
	if n < p+1 {
		return Model{}, fmt.Errorf("yule-walker order %d with %d samples: %w", p, n, ErrTooShort)
	}
	r, err := stat.AutoCorrelation(x, p)
	if err != nil {
		return Model{}, fmt.Errorf("yule-walker autocorrelation: %w", err)
	}
	if r[0] <= 1e-15 {
		return Model{Method: MethodYuleWalker, Order: p, Coeffs: make([]float64, p)}, nil
	}
	coeffs, errPower, _, err := mathx.LevinsonDurbin(r, p)
	if err != nil {
		return Model{}, fmt.Errorf("yule-walker levinson: %w", err)
	}
	return Model{
		Method:          MethodYuleWalker,
		Order:           p,
		Coeffs:          coeffs,
		ErrPower:        errPower,
		NormalizedError: mathx.Clamp(errPower/r[0], 0, 1),
		Energy:          r[0],
	}, nil
}

func fitBurg(x []float64, p int, ws *Workspace) (Model, error) {
	n := len(x)
	if n < 2*p+1 {
		return Model{}, fmt.Errorf("burg order %d with %d samples: %w", p, n, ErrTooShort)
	}
	var energy float64
	for _, v := range x {
		energy += v * v
	}
	if energy <= 1e-15 {
		return Model{Method: MethodBurg, Order: p, Coeffs: make([]float64, p)}, nil
	}

	ws.bf = growFloats(ws.bf, n)
	ws.bb = growFloats(ws.bb, n)
	f := ws.bf
	b := ws.bb
	copy(f, x)
	copy(b, x)
	if cap(ws.bcur) < p {
		ws.bcur = make([]float64, 0, p)
		ws.bprev = make([]float64, 0, p)
	}
	a := ws.bcur[:0]
	e := energy / float64(n)

	for m := 1; m <= p; m++ {
		var num, den float64
		for i := m; i < n; i++ {
			num += f[i] * b[i-1]
			den += f[i]*f[i] + b[i-1]*b[i-1]
		}
		var k float64
		if den > 0 {
			k = -2 * num / den
		}
		// a_new(i) = a(i) + k a(m−i), with a(m) = k.
		prev := append(ws.bprev[:0], a...)
		a = append(a, k)
		for i := 1; i < m; i++ {
			a[i-1] = prev[i-1] + k*prev[m-i-1]
		}
		// Update forward/backward residuals (descending keeps b(n−1)
		// unread-after-write).
		for i := n - 1; i >= m; i-- {
			fi := f[i]
			f[i] = fi + k*b[i-1]
			b[i] = b[i-1] + k*fi
		}
		e *= 1 - k*k
	}
	ws.bcur = a[:0]
	meanEnergy := energy / float64(n)
	return Model{
		Method:          MethodBurg,
		Order:           p,
		Coeffs:          append(make([]float64, 0, p), a...),
		ErrPower:        e,
		NormalizedError: mathx.Clamp(e/meanEnergy, 0, 1),
		Energy:          meanEnergy,
	}, nil
}

// Residuals returns the prediction residuals
// e(n) = x(n) + Σ_k a(k) x(n−k) for n in [p, len(x)). It errors when x
// is shorter than order+1 samples.
func Residuals(x, coeffs []float64) ([]float64, error) {
	return ResidualsInto(nil, x, coeffs)
}

// ResidualsInto is Residuals appending into dst (which may be nil or a
// reused scratch slice truncated to length zero); it returns the
// extended slice, letting hot loops score windows without allocating.
func ResidualsInto(dst, x, coeffs []float64) ([]float64, error) {
	p := len(coeffs)
	if len(x) <= p {
		return nil, fmt.Errorf("residuals order %d with %d samples: %w", p, len(x), ErrTooShort)
	}
	if dst == nil {
		dst = make([]float64, 0, len(x)-p)
	}
	for n := p; n < len(x); n++ {
		e := x[n]
		for k := 1; k <= p; k++ {
			e += coeffs[k-1] * x[n-k]
		}
		dst = append(dst, e)
	}
	return dst, nil
}

// NormalizedPredictionError evaluates how well the coefficients predict
// x: residual energy over signal energy across the prediction region,
// clamped to [0, 1]. It lets one window's model be scored on another
// window's data.
func NormalizedPredictionError(x, coeffs []float64) (float64, error) {
	res, err := Residuals(x, coeffs)
	if err != nil {
		return 0, err
	}
	var num, den float64
	for _, v := range res {
		num += v * v
	}
	for _, v := range x[len(coeffs):] {
		den += v * v
	}
	if den <= 1e-15 {
		return 0, nil
	}
	return mathx.Clamp(num/den, 0, 1), nil
}

// MinSamples returns the minimum window length Fit accepts for the
// given method and order.
func MinSamples(m Method, order int) int {
	if m == MethodYuleWalker {
		return order + 1
	}
	return 2*order + 1
}

// IsPredictable is a convenience: fits the model and reports whether
// the normalized error fell below threshold, swallowing ErrTooShort as
// "not predictable". Other errors are returned.
func IsPredictable(x []float64, order int, threshold float64, opts Options) (bool, Model, error) {
	m, err := Fit(x, order, opts)
	if err != nil {
		if errors.Is(err, ErrTooShort) {
			return false, Model{}, nil
		}
		return false, Model{}, err
	}
	return m.NormalizedError < threshold, m, nil
}
