package signal

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

// genAR2 synthesizes an AR(2) process x(n) = -a1 x(n-1) - a2 x(n-2) + w(n).
func genAR2(rng *randx.Rand, n int, a1, a2, noiseStd float64) []float64 {
	x := make([]float64, n)
	for i := 2; i < n; i++ {
		x[i] = -a1*x[i-1] - a2*x[i-2] + rng.Normal(0, noiseStd)
	}
	return x
}

func TestFitValidation(t *testing.T) {
	x := []float64{1, 2, 3}
	if _, err := Fit(x, 0, Options{}); err == nil {
		t.Fatal("order 0 accepted")
	}
	if _, err := Fit(x, 5, Options{}); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short window err = %v", err)
	}
	if _, err := Fit(x, 1, Options{Method: Method(99)}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestMethodString(t *testing.T) {
	if MethodCovariance.String() != "covariance" ||
		MethodYuleWalker.String() != "yule-walker" ||
		MethodBurg.String() != "burg" {
		t.Fatal("method names wrong")
	}
	if Method(42).String() != "method(42)" {
		t.Fatal("unknown method name wrong")
	}
}

func TestCovarianceRecoversCoefficients(t *testing.T) {
	// Low noise: covariance method must recover the generating polynomial.
	rng := randx.New(1)
	a1, a2 := -1.2, 0.6 // stable pair
	x := genAR2(rng, 600, a1, a2, 0.01)
	m, err := Fit(x, 2, Options{Method: MethodCovariance})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coeffs[0]-a1) > 0.05 || math.Abs(m.Coeffs[1]-a2) > 0.05 {
		t.Fatalf("coeffs = %v, want about [%g %g]", m.Coeffs, a1, a2)
	}
	if m.NormalizedError < 0 || m.NormalizedError > 1 {
		t.Fatalf("normalized error = %g", m.NormalizedError)
	}
}

func TestAllMethodsRecoverCoefficients(t *testing.T) {
	rng := randx.New(2)
	a1, a2 := -0.9, 0.4
	x := genAR2(rng, 2000, a1, a2, 0.05)
	for _, method := range []Method{MethodCovariance, MethodYuleWalker, MethodBurg} {
		m, err := Fit(x, 2, Options{Method: method, Demean: true})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if math.Abs(m.Coeffs[0]-a1) > 0.1 || math.Abs(m.Coeffs[1]-a2) > 0.1 {
			t.Errorf("%v coeffs = %v, want about [%g %g]", method, m.Coeffs, a1, a2)
		}
	}
}

func TestWhiteNoiseHasHighError(t *testing.T) {
	// Demeaned white noise should be nearly unpredictable: e close to 1.
	rng := randx.New(3)
	x := make([]float64, 400)
	for i := range x {
		x[i] = rng.Normal(0, 1)
	}
	for _, method := range []Method{MethodCovariance, MethodYuleWalker, MethodBurg} {
		m, err := Fit(x, 4, Options{Method: method, Demean: true})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if m.NormalizedError < 0.85 {
			t.Errorf("%v white-noise error = %g, want near 1", method, m.NormalizedError)
		}
	}
}

func TestStrongSignalHasLowError(t *testing.T) {
	// A sinusoid is an ideal AR "signal": error must be tiny.
	x := make([]float64, 200)
	for i := range x {
		x[i] = math.Sin(0.3 * float64(i))
	}
	m, err := Fit(x, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NormalizedError > 1e-6 {
		t.Fatalf("sinusoid error = %g, want about 0", m.NormalizedError)
	}
}

// TestCollusionSignature is the paper's core claim in miniature
// (§III.A.1): fitting raw rating windows, the one containing a
// low-variance biased clique must have markedly lower model error than
// the honest-only window.
func TestCollusionSignature(t *testing.T) {
	rng := randx.New(4)
	honest := make([]float64, 60)
	for i := range honest {
		honest[i] = randx.Quantize(rng.NormalVar(0.7, 0.2), 11, true)
	}
	attacked := make([]float64, 0, 60)
	for i := 0; i < 60; i++ {
		if i%2 == 0 {
			attacked = append(attacked, randx.Quantize(rng.NormalVar(0.85, 0.02), 11, true))
		} else {
			attacked = append(attacked, randx.Quantize(rng.NormalVar(0.7, 0.2), 11, true))
		}
	}
	mh, err := Fit(honest, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ma, err := Fit(attacked, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ma.NormalizedError >= mh.NormalizedError {
		t.Fatalf("attacked error %g not below honest error %g",
			ma.NormalizedError, mh.NormalizedError)
	}
}

func TestZeroEnergyWindow(t *testing.T) {
	x := make([]float64, 30)
	for _, method := range []Method{MethodCovariance, MethodYuleWalker, MethodBurg} {
		m, err := Fit(x, 3, Options{Method: method})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if m.NormalizedError != 0 || m.ErrPower != 0 {
			t.Errorf("%v zero window: %+v", method, m)
		}
		if len(m.Coeffs) != 3 {
			t.Errorf("%v zero window coeffs = %v", method, m.Coeffs)
		}
	}
}

func TestConstantWindowIsPerfectlyPredictable(t *testing.T) {
	// Raw (non-demeaned) constant ratings — e.g. a clique all voting
	// 0.9 — are a perfect AR fit: error 0.
	x := make([]float64, 40)
	for i := range x {
		x[i] = 0.9
	}
	m, err := Fit(x, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NormalizedError > 1e-9 {
		t.Fatalf("constant window error = %g", m.NormalizedError)
	}
}

func TestDemeanOption(t *testing.T) {
	// With demeaning, a constant window becomes zero-energy (error 0 by
	// convention); without, it is perfectly predictable (also 0) but
	// with nonzero energy.
	x := make([]float64, 40)
	for i := range x {
		x[i] = 0.5
	}
	raw, err := Fit(x, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dm, err := Fit(x, 2, Options{Demean: true})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Energy <= 0 {
		t.Fatalf("raw energy = %g, want > 0", raw.Energy)
	}
	if dm.Energy != 0 {
		t.Fatalf("demeaned energy = %g, want 0", dm.Energy)
	}
}

func TestResiduals(t *testing.T) {
	// Perfect AR(1): x(n) = 0.5 x(n-1), coeffs = [-0.5] -> residuals 0.
	x := []float64{1, 0.5, 0.25, 0.125}
	res, err := Residuals(x, []float64{-0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("len = %d", len(res))
	}
	for _, v := range res {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("residuals = %v, want zeros", res)
		}
	}
}

func TestResidualsTooShort(t *testing.T) {
	if _, err := Residuals([]float64{1}, []float64{-0.5, 0.2}); !errors.Is(err, ErrTooShort) {
		t.Fatalf("err = %v", err)
	}
}

func TestNormalizedPredictionError(t *testing.T) {
	x := []float64{1, 0.5, 0.25, 0.125, 0.0625}
	e, err := NormalizedPredictionError(x, []float64{-0.5})
	if err != nil {
		t.Fatal(err)
	}
	if e > 1e-12 {
		t.Fatalf("perfect model error = %g", e)
	}
	// Terrible model on the same data.
	e2, err := NormalizedPredictionError(x, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if e2 <= e {
		t.Fatal("bad model did not score worse")
	}
}

func TestMinSamples(t *testing.T) {
	if MinSamples(MethodCovariance, 4) != 9 {
		t.Fatal("covariance min wrong")
	}
	if MinSamples(MethodYuleWalker, 4) != 5 {
		t.Fatal("yule-walker min wrong")
	}
	if MinSamples(MethodBurg, 3) != 7 {
		t.Fatal("burg min wrong")
	}
}

func TestIsPredictable(t *testing.T) {
	x := make([]float64, 40)
	for i := range x {
		x[i] = 0.9
	}
	ok, m, err := IsPredictable(x, 3, 0.02, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("constant window not predictable: %+v", m)
	}
	// Too-short window: not predictable, no error.
	ok, _, err = IsPredictable(x[:4], 3, 0.02, Options{})
	if err != nil || ok {
		t.Fatalf("short window: ok=%v err=%v", ok, err)
	}
}

// Property: normalized error stays within [0, 1] across orders. (It is
// NOT monotone in order for the covariance method: the prediction
// region Σ_{n=p}^{N-1} shrinks as p grows, so the target itself moves.)
func TestFitErrorBoundsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		n := 30 + rng.Intn(100)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormalVar(0.6, 0.1)
		}
		for p := 1; p <= 5; p++ {
			m, err := Fit(x, p, Options{})
			if err != nil {
				return false
			}
			if m.NormalizedError < 0 || m.NormalizedError > 1 {
				return false
			}
			if len(m.Coeffs) != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: all three estimators stay within [0, 1] normalized error on
// arbitrary rating-like windows, including quantized and constant ones.
func TestAllMethodsBoundedProperty(t *testing.T) {
	prop := func(seed int64, quantized bool) bool {
		rng := randx.New(seed)
		n := 25 + rng.Intn(60)
		x := make([]float64, n)
		for i := range x {
			v := rng.NormalVar(0.5, 0.2)
			if quantized {
				v = randx.Quantize(v, 11, true)
			}
			x[i] = v
		}
		for _, method := range []Method{MethodCovariance, MethodYuleWalker, MethodBurg} {
			m, err := Fit(x, 4, Options{Method: method})
			if err != nil {
				return false
			}
			if m.NormalizedError < 0 || m.NormalizedError > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFitWSMatchesFitBitwise(t *testing.T) {
	// A reused workspace must never change a single bit of the fit —
	// across methods, orders, and demeaning, with the same workspace
	// carried (dirty) from window to window.
	rng := randx.New(99)
	ws := NewWorkspace()
	for trial := 0; trial < 30; trial++ {
		n := 30 + rng.Intn(60)
		x := genAR2(rng.Split(), n, -0.6, 0.3, 0.1)
		for _, method := range []Method{MethodCovariance, MethodYuleWalker, MethodBurg} {
			for _, order := range []int{2, 4, 7} {
				for _, demean := range []bool{false, true} {
					opts := Options{Method: method, Demean: demean}
					want, errWant := Fit(x, order, opts)
					got, errGot := FitWS(x, order, opts, ws)
					if (errWant == nil) != (errGot == nil) {
						t.Fatalf("%v order %d: err %v vs %v", method, order, errWant, errGot)
					}
					if errWant != nil {
						continue
					}
					if want.NormalizedError != got.NormalizedError || want.ErrPower != got.ErrPower || want.Energy != got.Energy {
						t.Fatalf("%v order %d demean=%v: scalars differ", method, order, demean)
					}
					for i := range want.Coeffs {
						if want.Coeffs[i] != got.Coeffs[i] {
							t.Fatalf("%v order %d demean=%v: coeff %d: %g != %g",
								method, order, demean, i, want.Coeffs[i], got.Coeffs[i])
						}
					}
				}
			}
		}
	}
}

func TestFitWSAllocs(t *testing.T) {
	// With a warm workspace, the only per-fit allocation is the
	// returned Coeffs slice (plus the Model escape analysis may add).
	x := genAR2(randx.New(7), 50, -0.6, 0.3, 0.1)
	ws := NewWorkspace()
	if _, err := FitWS(x, 4, Options{}, ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := FitWS(x, 4, Options{}, ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("FitWS allocates %.1f objects/op with a warm workspace, want <= 2", allocs)
	}
}

func TestResidualsIntoReuse(t *testing.T) {
	x := genAR2(randx.New(3), 60, -0.5, 0.2, 0.1)
	m, err := Fit(x, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Residuals(x, m.Coeffs)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 0, len(x))
	got, err := ResidualsInto(buf, x, m.Coeffs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("residual %d: %g != %g", i, got[i], want[i])
		}
	}
	// Second use must reuse the buffer, not allocate.
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := ResidualsInto(got[:0], x, m.Coeffs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ResidualsInto allocates %.1f/op with adequate buffer", allocs)
	}
}
