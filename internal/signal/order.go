package signal

import (
	"errors"
	"fmt"
	"math"
)

// Criterion selects the model-order scoring rule.
type Criterion int

const (
	// CriterionFPE is Akaike's Final Prediction Error:
	// FPE(p) = e(p) · (N+p+1)/(N−p−1).
	CriterionFPE Criterion = iota + 1
	// CriterionAIC is the Akaike Information Criterion:
	// AIC(p) = N·ln e(p) + 2p.
	CriterionAIC
	// CriterionMDL is Rissanen's Minimum Description Length:
	// MDL(p) = N·ln e(p) + p·ln N.
	CriterionMDL
)

// String names the criterion.
func (c Criterion) String() string {
	switch c {
	case CriterionFPE:
		return "fpe"
	case CriterionAIC:
		return "aic"
	case CriterionMDL:
		return "mdl"
	default:
		return fmt.Sprintf("criterion(%d)", int(c))
	}
}

// OrderScore is one candidate order's outcome.
type OrderScore struct {
	Order int
	Model Model
	Score float64
}

// ErrNoValidOrder is returned when no candidate order could be fitted.
var ErrNoValidOrder = errors.New("signal: no candidate order could be fitted")

// SelectOrder fits orders 1..maxOrder and returns the order minimizing
// the criterion, along with every candidate's score (for diagnostics).
// Orders whose fit fails (window too short, degenerate data) are
// skipped; ErrNoValidOrder is returned if none survive. The error-power
// term uses the fit's ErrPower; zero error powers (perfectly
// predictable windows) short-circuit to that order, since no criterion
// can improve on zero residual.
func SelectOrder(x []float64, maxOrder int, criterion Criterion, opts Options) (best OrderScore, all []OrderScore, err error) {
	if maxOrder < 1 {
		return OrderScore{}, nil, fmt.Errorf("signal: max order %d", maxOrder)
	}
	n := float64(len(x))
	bestIdx := -1
	for p := 1; p <= maxOrder; p++ {
		model, ferr := Fit(x, p, opts)
		if ferr != nil {
			if errors.Is(ferr, ErrTooShort) {
				break // higher orders only get worse
			}
			return OrderScore{}, nil, ferr
		}
		e := model.ErrPower
		if model.Method == MethodCovariance {
			// The covariance method's ErrPower is the residual SUM over
			// the N−p prediction samples; the criteria need a per-sample
			// power so orders stay comparable.
			e /= n - float64(p)
		}
		if e <= 0 || (model.Energy > 0 && model.ErrPower/model.Energy < 1e-7) {
			// (Numerically) perfect fit — the regularization ridge leaves
			// a ~1e-9-relative residual on constant windows. Nothing
			// beats zero residual, so stop here.
			score := OrderScore{Order: p, Model: model, Score: math.Inf(-1)}
			all = append(all, score)
			return score, all, nil
		}
		var s float64
		switch criterion {
		case CriterionFPE:
			fp := float64(p)
			denom := n - fp - 1
			if denom <= 0 {
				continue
			}
			s = e * (n + fp + 1) / denom
		case CriterionAIC:
			s = n*math.Log(e) + 2*float64(p)
		case CriterionMDL:
			s = n*math.Log(e) + float64(p)*math.Log(n)
		default:
			return OrderScore{}, nil, fmt.Errorf("signal: unknown criterion %d", int(criterion))
		}
		all = append(all, OrderScore{Order: p, Model: model, Score: s})
		if bestIdx == -1 || s < all[bestIdx].Score {
			bestIdx = len(all) - 1
		}
	}
	if bestIdx == -1 {
		return OrderScore{}, all, ErrNoValidOrder
	}
	return all[bestIdx], all, nil
}

// PowerSpectrum evaluates the AR model's power spectral density at
// nFreq equally spaced normalized frequencies in [0, 0.5] (cycles per
// sample):
//
//	S(f) = σ² / |1 + Σ_k a(k) e^{−j2πfk}|²
//
// where σ² is the prediction-error power. Useful as a diagnostic for
// what structure the detector locked onto inside a suspicious window.
func (m Model) PowerSpectrum(nFreq int) (freqs, psd []float64, err error) {
	if nFreq < 2 {
		return nil, nil, fmt.Errorf("signal: %d frequencies", nFreq)
	}
	freqs = make([]float64, nFreq)
	psd = make([]float64, nFreq)
	for i := 0; i < nFreq; i++ {
		f := 0.5 * float64(i) / float64(nFreq-1)
		freqs[i] = f
		var re, im float64 = 1, 0
		for k, a := range m.Coeffs {
			angle := -2 * math.Pi * f * float64(k+1)
			re += a * math.Cos(angle)
			im += a * math.Sin(angle)
		}
		mag := re*re + im*im
		if mag < 1e-300 {
			mag = 1e-300
		}
		psd[i] = m.ErrPower / mag
	}
	return freqs, psd, nil
}
