package signal

import (
	"errors"
	"math"
	"testing"

	"repro/internal/randx"
)

func TestCriterionString(t *testing.T) {
	if CriterionFPE.String() != "fpe" || CriterionAIC.String() != "aic" || CriterionMDL.String() != "mdl" {
		t.Fatal("criterion names")
	}
	if Criterion(9).String() != "criterion(9)" {
		t.Fatal("unknown criterion name")
	}
}

func TestSelectOrderRecoversAR2(t *testing.T) {
	// A strong AR(2) process: all criteria should pick an order >= 2
	// and close to 2.
	rng := randx.New(1)
	x := genAR2(rng, 400, -1.2, 0.6, 0.1)
	for _, c := range []Criterion{CriterionFPE, CriterionAIC, CriterionMDL} {
		best, all, err := SelectOrder(x, 8, c, Options{Demean: true})
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if len(all) != 8 {
			t.Fatalf("%v: %d candidates", c, len(all))
		}
		if best.Order < 2 || best.Order > 4 {
			t.Errorf("%v picked order %d for an AR(2) process", c, best.Order)
		}
	}
}

func TestSelectOrderWhiteNoisePrefersSmall(t *testing.T) {
	// For white noise the penalized criteria (MDL especially) should
	// pick a small order.
	rng := randx.New(2)
	x := make([]float64, 300)
	for i := range x {
		x[i] = rng.Normal(0, 1)
	}
	best, _, err := SelectOrder(x, 10, CriterionMDL, Options{Demean: true})
	if err != nil {
		t.Fatal(err)
	}
	if best.Order > 3 {
		t.Fatalf("MDL picked order %d on white noise", best.Order)
	}
}

func TestSelectOrderPerfectFitShortCircuits(t *testing.T) {
	// A constant raw window is perfectly predictable at order 1.
	x := make([]float64, 60)
	for i := range x {
		x[i] = 0.8
	}
	best, all, err := SelectOrder(x, 6, CriterionAIC, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if best.Order != 1 {
		t.Fatalf("order %d, want 1", best.Order)
	}
	if !math.IsInf(best.Score, -1) {
		t.Fatalf("score %g, want -inf sentinel", best.Score)
	}
	if len(all) != 1 {
		t.Fatalf("%d candidates, want early stop", len(all))
	}
}

func TestSelectOrderValidation(t *testing.T) {
	if _, _, err := SelectOrder([]float64{1, 2, 3}, 0, CriterionAIC, Options{}); err == nil {
		t.Fatal("max order 0 accepted")
	}
	if _, _, err := SelectOrder(genAR2(randx.New(3), 100, -1, 0.5, 0.1), 3, Criterion(99), Options{}); err == nil {
		t.Fatal("unknown criterion accepted")
	}
	// Too short for even order 1: ErrNoValidOrder.
	if _, _, err := SelectOrder([]float64{1, 2}, 4, CriterionAIC, Options{}); !errors.Is(err, ErrNoValidOrder) {
		t.Fatalf("err = %v", err)
	}
}

func TestSelectOrderSkipsTooHighOrders(t *testing.T) {
	// 11 samples support covariance orders up to 5; candidates stop
	// there instead of erroring.
	rng := randx.New(4)
	x := make([]float64, 11)
	for i := range x {
		x[i] = rng.Normal(0.5, 0.1)
	}
	_, all, err := SelectOrder(x, 10, CriterionAIC, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 || len(all) > 5 {
		t.Fatalf("%d candidates", len(all))
	}
}

func TestPowerSpectrumSinusoidPeak(t *testing.T) {
	// AR fit of a 0.1-cycles/sample sinusoid: the PSD must peak there.
	x := make([]float64, 300)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 0.1 * float64(i))
	}
	m, err := Fit(x, 4, Options{Demean: true})
	if err != nil {
		t.Fatal(err)
	}
	freqs, psd, err := m.PowerSpectrum(512)
	if err != nil {
		t.Fatal(err)
	}
	peak := 0
	for i := range psd {
		if psd[i] > psd[peak] {
			peak = i
		}
	}
	if math.Abs(freqs[peak]-0.1) > 0.01 {
		t.Fatalf("PSD peak at %g, want 0.1", freqs[peak])
	}
}

func TestPowerSpectrumValidation(t *testing.T) {
	m := Model{Coeffs: []float64{-0.5}, ErrPower: 1}
	if _, _, err := m.PowerSpectrum(1); err == nil {
		t.Fatal("1 frequency accepted")
	}
	freqs, psd, err := m.PowerSpectrum(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(freqs) != 16 || len(psd) != 16 {
		t.Fatal("lengths")
	}
	if freqs[0] != 0 || freqs[15] != 0.5 {
		t.Fatalf("freq range [%g, %g]", freqs[0], freqs[15])
	}
	for _, v := range psd {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("psd value %g", v)
		}
	}
}

func TestPowerSpectrumAR1Shape(t *testing.T) {
	// x(n) = 0.8 x(n-1) + w(n) -> lowpass PSD: monotone decreasing.
	m := Model{Coeffs: []float64{-0.8}, ErrPower: 1}
	_, psd, err := m.PowerSpectrum(64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(psd); i++ {
		if psd[i] > psd[i-1]+1e-12 {
			t.Fatalf("AR(1) lowpass PSD not monotone at %d", i)
		}
	}
}
