package signal

import (
	"fmt"
	"math"
)

// Stability analyzes an all-pole model's coefficients a(1..p) with the
// step-down (inverse Levinson) recursion, recovering the reflection
// coefficients k(1..p). The model is stable — all poles strictly inside
// the unit circle — iff every |k(i)| < 1 (Schur-Cohn).
//
// Covariance-method fits are not guaranteed stable (unlike
// Yule-Walker's); an unstable fitted model on a rating window signals a
// strong non-stationarity, which is itself diagnostic.
func Stability(coeffs []float64) (stable bool, reflection []float64, err error) {
	p := len(coeffs)
	if p == 0 {
		return true, nil, nil
	}
	for _, c := range coeffs {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return false, nil, fmt.Errorf("signal: non-finite coefficient %g", c)
		}
	}

	reflection = make([]float64, p)
	a := append([]float64(nil), coeffs...)
	stable = true
	for m := p; m >= 1; m-- {
		k := a[m-1]
		reflection[m-1] = k
		if math.Abs(k) >= 1 {
			stable = false
			// The remaining reflection coefficients are undefined once a
			// step-down divisor vanishes; stop rather than divide by ~0.
			for i := 0; i < m-1; i++ {
				reflection[i] = math.NaN()
			}
			break
		}
		if m == 1 {
			break
		}
		denom := 1 - k*k
		prev := make([]float64, m-1)
		for i := 1; i < m; i++ {
			prev[i-1] = (a[i-1] - k*a[m-i-1]) / denom
		}
		a = prev
	}
	return stable, reflection, nil
}

// IsStable reports only the stability verdict.
func IsStable(coeffs []float64) (bool, error) {
	stable, _, err := Stability(coeffs)
	return stable, err
}
