package signal

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

func TestStabilityEmpty(t *testing.T) {
	stable, refl, err := Stability(nil)
	if err != nil || !stable || refl != nil {
		t.Fatalf("empty: %v %v %v", stable, refl, err)
	}
}

func TestStabilityAR1(t *testing.T) {
	// x(n) = 0.5 x(n-1): a = [-0.5], pole at 0.5 -> stable.
	stable, refl, err := Stability([]float64{-0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !stable || refl[0] != -0.5 {
		t.Fatalf("stable=%v refl=%v", stable, refl)
	}
	// Pole at 1.5 -> unstable.
	stable, _, err = Stability([]float64{-1.5})
	if err != nil {
		t.Fatal(err)
	}
	if stable {
		t.Fatal("pole outside unit circle reported stable")
	}
}

func TestStabilityAR2KnownPoles(t *testing.T) {
	// Poles at re^{±jθ}: a1 = -2r cosθ, a2 = r².
	mk := func(r, theta float64) []float64 {
		return []float64{-2 * r * math.Cos(theta), r * r}
	}
	stable, _, err := Stability(mk(0.9, 0.7))
	if err != nil || !stable {
		t.Fatalf("poles at r=0.9: stable=%v err=%v", stable, err)
	}
	stable, _, err = Stability(mk(1.1, 0.7))
	if err != nil || stable {
		t.Fatalf("poles at r=1.1: stable=%v err=%v", stable, err)
	}
}

func TestStabilityNonFinite(t *testing.T) {
	if _, _, err := Stability([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, _, err := Stability([]float64{math.Inf(1)}); err == nil {
		t.Fatal("Inf accepted")
	}
}

func TestStabilityUnstableMarksUndefinedReflections(t *testing.T) {
	// Order-3 with |k3| >= 1: earlier reflections undefined (NaN).
	_, refl, err := Stability([]float64{0.1, 0.1, 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(refl[0]) || !math.IsNaN(refl[1]) || refl[2] != 1.2 {
		t.Fatalf("reflections = %v", refl)
	}
}

// Property: models built from reflection coefficients with |k| < 1 via
// the Levinson step-UP recursion are always reported stable, and the
// step-down recovers the same k's.
func TestStabilityInvertsLevinsonProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		p := 1 + rng.Intn(6)
		ks := make([]float64, p)
		for i := range ks {
			ks[i] = rng.Uniform(-0.95, 0.95)
		}
		// Step-up: build a(1..p) from the reflection sequence.
		a := make([]float64, 0, p)
		for m := 1; m <= p; m++ {
			k := ks[m-1]
			prev := append([]float64(nil), a...)
			a = append(a, k)
			for i := 1; i < m; i++ {
				a[i-1] = prev[i-1] + k*prev[m-i-1]
			}
		}
		stable, refl, err := Stability(a)
		if err != nil || !stable {
			return false
		}
		for i := range ks {
			if math.Abs(refl[i]-ks[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Yule-Walker fits are always stable (a guarantee of the
// autocorrelation method), and their step-down reflections match the
// Levinson recursion's.
func TestYuleWalkerAlwaysStableProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		n := 30 + rng.Intn(100)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormalVar(0.5, 0.1)
		}
		m, err := Fit(x, 4, Options{Method: MethodYuleWalker})
		if err != nil {
			return false
		}
		stable, _, err := Stability(m.Coeffs)
		return err == nil && stable
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
