package sim

import (
	"fmt"

	"repro/internal/randx"
	"repro/internal/rating"
)

// IllustrativeParams are the §III.A.2 generator parameters, named after
// the paper's table. The zero value is not runnable; start from
// DefaultIllustrative (the paper's simulated-data setting) and adjust.
type IllustrativeParams struct {
	// SimuTime is the simulation length in days (paper: 60).
	SimuTime float64
	// ArrivalRate is the honest Poisson arrival rate per day (paper: 3).
	ArrivalRate float64
	// RLevels is the number of rating levels, scores i/(RLevels−1)
	// (paper: 11 → 0, 0.1, ..., 1).
	RLevels int
	// QualityStart and QualityEnd define the linear quality drift
	// (paper: 0.7 → 0.8).
	QualityStart, QualityEnd float64
	// GoodVar is the honest rating variance around quality (paper: 0.2).
	GoodVar float64
	// AStart and AEnd delimit the attack interval in days
	// (paper: 30 → 44).
	AStart, AEnd float64
	// BiasShift1 and RecruitPower1 describe type-1 colluders: each
	// honest arrival inside the attack interval is converted with
	// probability RecruitPower1 and its rating shifted by +BiasShift1
	// (paper: 0.2, 0.3).
	BiasShift1, RecruitPower1 float64
	// BiasShift2, BadVar and RecruitPower2 describe type-2 colluders:
	// Poisson arrivals at rate ArrivalRate·RecruitPower2 inside the
	// attack interval rating N(quality+BiasShift2, BadVar)
	// (paper: 0.15, 0.02, 1).
	BiasShift2, BadVar, RecruitPower2 float64
	// Attack enables the collaborative raters; with false the trace is
	// honest-only (the "without CR" curves).
	Attack bool
	// Object is the rated object's ID (single object scenario).
	Object rating.ObjectID
}

// DefaultIllustrative returns the paper's §III.A.2 parameters with the
// attack enabled.
func DefaultIllustrative() IllustrativeParams {
	return IllustrativeParams{
		SimuTime:      60,
		ArrivalRate:   3,
		RLevels:       11,
		QualityStart:  0.7,
		QualityEnd:    0.8,
		GoodVar:       0.2,
		AStart:        30,
		AEnd:          44,
		BiasShift1:    0.2,
		RecruitPower1: 0.3,
		BiasShift2:    0.15,
		BadVar:        0.02,
		RecruitPower2: 1,
		Attack:        true,
	}
}

// Validate reports parameter errors.
func (p IllustrativeParams) Validate() error {
	switch {
	case p.SimuTime <= 0:
		return fmt.Errorf("sim: simuTime %g", p.SimuTime)
	case p.ArrivalRate <= 0:
		return fmt.Errorf("sim: arrivalRate %g", p.ArrivalRate)
	case p.RLevels < 2:
		return fmt.Errorf("sim: rLevels %d", p.RLevels)
	case p.QualityStart < 0 || p.QualityStart > 1 || p.QualityEnd < 0 || p.QualityEnd > 1:
		return fmt.Errorf("sim: quality %g→%g outside [0,1]", p.QualityStart, p.QualityEnd)
	case p.GoodVar < 0 || p.BadVar < 0:
		return fmt.Errorf("sim: negative variance")
	case p.Attack && (p.AStart < 0 || p.AEnd > p.SimuTime || p.AEnd < p.AStart):
		return fmt.Errorf("sim: attack interval [%g,%g] outside [0,%g]", p.AStart, p.AEnd, p.SimuTime)
	case p.RecruitPower1 < 0 || p.RecruitPower1 > 1:
		return fmt.Errorf("sim: recruitPower1 %g outside [0,1]", p.RecruitPower1)
	case p.RecruitPower2 < 0:
		return fmt.Errorf("sim: recruitPower2 %g negative", p.RecruitPower2)
	}
	return nil
}

// Quality returns the object's true quality at time t: linear between
// QualityStart and QualityEnd over the simulation.
func (p IllustrativeParams) Quality(t float64) float64 {
	if p.SimuTime <= 0 {
		return p.QualityStart
	}
	frac := t / p.SimuTime
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return p.QualityStart + (p.QualityEnd-p.QualityStart)*frac
}

// InAttack reports whether time t lies in the attack interval.
func (p IllustrativeParams) InAttack(t float64) bool {
	return p.Attack && t >= p.AStart && t <= p.AEnd
}

// GenerateIllustrative synthesizes one trace. Every honest arrival gets
// a fresh rater ID (the paper's "rater i wants to give rating ri at
// time ti"); type-2 colluders get IDs from 100000 up so tests and
// experiments can separate populations without consulting labels.
func GenerateIllustrative(rng *randx.Rand, p IllustrativeParams) ([]LabeledRating, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var out []LabeledRating
	next := rating.RaterID(0)
	for _, tm := range rng.PoissonProcess(p.ArrivalRate, 0, p.SimuTime) {
		value := rng.NormalVar(p.Quality(tm), p.GoodVar)
		class, unfair := Reliable, false
		if p.InAttack(tm) && rng.Bernoulli(p.RecruitPower1) {
			// Type-1: the owner bends an existing honest rating upward.
			value += p.BiasShift1
			class, unfair = Type1Collaborative, true
		}
		out = append(out, LabeledRating{
			Rating: rating.Rating{
				Rater:  next,
				Object: p.Object,
				Value:  randx.Quantize(value, p.RLevels, true),
				Time:   tm,
			},
			Class:  class,
			Unfair: unfair,
		})
		next++
	}
	if p.Attack && p.RecruitPower2 > 0 {
		colluder := rating.RaterID(100000)
		for _, tm := range rng.PoissonProcess(p.ArrivalRate*p.RecruitPower2, p.AStart, p.AEnd) {
			value := rng.NormalVar(p.Quality(tm)+p.BiasShift2, p.BadVar)
			out = append(out, LabeledRating{
				Rating: rating.Rating{
					Rater:  colluder,
					Object: p.Object,
					Value:  randx.Quantize(value, p.RLevels, true),
					Time:   tm,
				},
				Class:  Type2Collaborative,
				Unfair: true,
			})
			colluder++
		}
	}
	SortByTime(out)
	return out, nil
}
