package sim

import (
	"fmt"
	"sort"

	"repro/internal/randx"
	"repro/internal/rating"
)

// Product is one rated product in the marketplace scenario.
type Product struct {
	ID rating.ObjectID
	// Month is the 0-based month in which the product receives ratings.
	Month int
	// Quality is the true quality, drawn uniformly from
	// [QualityLo, QualityHi].
	Quality float64
	// Dishonest marks the product whose owner recruits collaborative
	// raters.
	Dishonest bool
}

// MarketplaceParams are the §IV.A simulation parameters. Paper-stated
// values are noted; Prate, RecruitPower3 and the recruit window
// placement are unspecified in the paper (see DESIGN.md) and default to
// values that give each product enough ratings for the AR fit.
type MarketplaceParams struct {
	// Reliable, Careless and PC are the rater population sizes
	// (paper: 400, 200, 200). Rater IDs are assigned contiguously:
	// reliable first, then careless, then PC.
	Reliable, Careless, PC int
	// Months and DaysPerMonth span the simulation (paper: 12 × 30).
	Months, DaysPerMonth int
	// HonestPerMonth and DishonestPerMonth are products introduced each
	// month (paper: 4 + 1).
	HonestPerMonth, DishonestPerMonth int
	// QualityLo and QualityHi bound product quality (paper: 0.4, 0.6).
	QualityLo, QualityHi float64
	// GoodVar and CarelessVar are rating variances (paper: 0.2, 0.3).
	GoodVar, CarelessVar float64
	// BiasShift2 and BadVar describe recruited type-2 behavior
	// (paper: 0.15 or 0.2, and 0.02).
	BiasShift2, BadVar float64
	// RecruitPower3 is the fraction of PC raters a dishonest product
	// recruits each month (unspecified; default 0.8).
	RecruitPower3 float64
	// RecruitDays is how many days per month the recruitment lasts
	// (paper: 10; placed at the start of each month).
	RecruitDays int
	// PRate is the daily probability an honest rater rates (unspecified;
	// default 0.025).
	PRate float64
	// A1 and A2 scale a PC rater's daily rating probability when
	// recruited / not recruited (paper: 6 or 8, and 0.5).
	A1, A2 float64
	// Levels is the rating scale size, scores i/Levels for i in
	// [1, Levels] (paper: 10 → 0.1..1).
	Levels int
}

// DefaultMarketplace returns the §IV.A parameters with the
// unspecified knobs at their documented defaults and a1 = 6 (the first
// experiment's setting).
func DefaultMarketplace() MarketplaceParams {
	return MarketplaceParams{
		Reliable:          400,
		Careless:          200,
		PC:                200,
		Months:            12,
		DaysPerMonth:      30,
		HonestPerMonth:    4,
		DishonestPerMonth: 1,
		QualityLo:         0.4,
		QualityHi:         0.6,
		GoodVar:           0.2,
		CarelessVar:       0.3,
		BiasShift2:        0.15,
		BadVar:            0.02,
		RecruitPower3:     0.8,
		RecruitDays:       10,
		PRate:             0.025,
		A1:                6,
		A2:                0.5,
		Levels:            10,
	}
}

// Validate reports parameter errors.
func (p MarketplaceParams) Validate() error {
	switch {
	case p.Reliable < 0 || p.Careless < 0 || p.PC < 0:
		return fmt.Errorf("sim: negative population")
	case p.Reliable+p.Careless+p.PC == 0:
		return fmt.Errorf("sim: empty population")
	case p.Months < 1 || p.DaysPerMonth < 1:
		return fmt.Errorf("sim: months=%d daysPerMonth=%d", p.Months, p.DaysPerMonth)
	case p.HonestPerMonth < 0 || p.DishonestPerMonth < 0 || p.HonestPerMonth+p.DishonestPerMonth == 0:
		return fmt.Errorf("sim: products per month %d+%d", p.HonestPerMonth, p.DishonestPerMonth)
	case p.QualityLo < 0 || p.QualityHi > 1 || p.QualityHi < p.QualityLo:
		return fmt.Errorf("sim: quality range [%g,%g]", p.QualityLo, p.QualityHi)
	case p.GoodVar < 0 || p.CarelessVar < 0 || p.BadVar < 0:
		return fmt.Errorf("sim: negative variance")
	case p.RecruitPower3 < 0 || p.RecruitPower3 > 1:
		return fmt.Errorf("sim: recruitPower3 %g outside [0,1]", p.RecruitPower3)
	case p.RecruitDays < 0 || p.RecruitDays > p.DaysPerMonth:
		return fmt.Errorf("sim: recruitDays %d outside [0,%d]", p.RecruitDays, p.DaysPerMonth)
	case p.PRate <= 0 || p.PRate > 1:
		return fmt.Errorf("sim: pRate %g outside (0,1]", p.PRate)
	case p.A1 < 1 || p.A1*p.PRate > 1:
		return fmt.Errorf("sim: a1=%g must be >= 1 with a1*pRate <= 1", p.A1)
	case p.A2 < 0 || p.A2 > 1:
		return fmt.Errorf("sim: a2=%g outside [0,1]", p.A2)
	case p.Levels < 2:
		return fmt.Errorf("sim: levels %d", p.Levels)
	}
	return nil
}

// Population sizes and ID layout.

// RaterClassOf returns the identity class of a rater ID under the
// contiguous layout (reliable, careless, PC).
func (p MarketplaceParams) RaterClassOf(id rating.RaterID) RaterClass {
	switch {
	case int(id) < p.Reliable:
		return Reliable
	case int(id) < p.Reliable+p.Careless:
		return Careless
	default:
		return PotentialCollaborative
	}
}

// TotalRaters returns the population size.
func (p MarketplaceParams) TotalRaters() int { return p.Reliable + p.Careless + p.PC }

// MarketplaceTrace is a generated §IV workload.
type MarketplaceTrace struct {
	Params   MarketplaceParams
	Products []Product
	// Ratings are all ratings, time-sorted.
	Ratings []LabeledRating
	// Recruited[month] is the set of PC raters recruited that month.
	Recruited []map[rating.RaterID]bool
}

// ByProduct returns the trace's ratings for one product, time-sorted.
func (t *MarketplaceTrace) ByProduct(id rating.ObjectID) []LabeledRating {
	var out []LabeledRating
	for _, l := range t.Ratings {
		if l.Rating.Object == id {
			out = append(out, l)
		}
	}
	return out
}

// HonestProducts returns the honest products in ID order.
func (t *MarketplaceTrace) HonestProducts() []Product { return t.products(false) }

// DishonestProducts returns the dishonest products in ID order.
func (t *MarketplaceTrace) DishonestProducts() []Product { return t.products(true) }

func (t *MarketplaceTrace) products(dishonest bool) []Product {
	var out []Product
	for _, pr := range t.Products {
		if pr.Dishonest == dishonest {
			out = append(out, pr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// GenerateMarketplace synthesizes a §IV trace. Determinism: the trace
// is a pure function of rng's seed and the parameters.
//
// Mechanics per day d of month m:
//   - each reliable/careless rater rates, with probability PRate, one
//     uniformly chosen not-yet-rated product of the month, honestly
//     (mean = quality, variance GoodVar or CarelessVar);
//   - a recruited PC rater, during the month's first RecruitDays days,
//     rates the month's dishonest product (once) with probability
//     A1·PRate, biased: N(quality + BiasShift2, BadVar);
//   - otherwise a PC rater behaves reliably but with probability
//     A2·PRate.
//
// One rater rates a given product at most once.
func GenerateMarketplace(rng *randx.Rand, p MarketplaceParams) (*MarketplaceTrace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}

	perMonth := p.HonestPerMonth + p.DishonestPerMonth
	trace := &MarketplaceTrace{Params: p}
	for m := 0; m < p.Months; m++ {
		for k := 0; k < perMonth; k++ {
			trace.Products = append(trace.Products, Product{
				ID:        rating.ObjectID(m*perMonth + k + 1),
				Month:     m,
				Quality:   rng.Uniform(p.QualityLo, p.QualityHi),
				Dishonest: k >= p.HonestPerMonth,
			})
		}
	}

	total := p.TotalRaters()
	pcBase := p.Reliable + p.Careless
	rated := make(map[rating.RaterID]map[rating.ObjectID]bool, total)
	hasRated := func(r rating.RaterID, o rating.ObjectID) bool { return rated[r][o] }
	markRated := func(r rating.RaterID, o rating.ObjectID) {
		m, ok := rated[r]
		if !ok {
			m = make(map[rating.ObjectID]bool, 4)
			rated[r] = m
		}
		m[o] = true
	}

	emitHonest := func(r rating.RaterID, pr Product, day float64, variance float64, class RaterClass) {
		value := randx.Quantize(rng.NormalVar(pr.Quality, variance), p.Levels, false)
		trace.Ratings = append(trace.Ratings, LabeledRating{
			Rating: rating.Rating{Rater: r, Object: pr.ID, Value: value, Time: day},
			Class:  class,
		})
		markRated(r, pr.ID)
	}

	for m := 0; m < p.Months; m++ {
		active := trace.Products[m*perMonth : (m+1)*perMonth]
		var dishonest []Product
		for _, pr := range active {
			if pr.Dishonest {
				dishonest = append(dishonest, pr)
			}
		}
		// Monthly recruitment by the dishonest product(s).
		recruited := make(map[rating.RaterID]bool)
		if len(dishonest) > 0 {
			k := int(p.RecruitPower3 * float64(p.PC))
			for _, idx := range rng.SampleWithoutReplacement(p.PC, k) {
				recruited[rating.RaterID(pcBase+idx)] = true
			}
		}
		trace.Recruited = append(trace.Recruited, recruited)

		for d := 0; d < p.DaysPerMonth; d++ {
			day := float64(m*p.DaysPerMonth + d)
			// Sub-day jitter keeps rating times distinct enough for
			// stable time-ordering without changing daily semantics.
			inRecruitWindow := d < p.RecruitDays

			for id := 0; id < total; id++ {
				r := rating.RaterID(id)
				class := p.RaterClassOf(r)
				switch class {
				case Reliable, Careless:
					if !rng.Bernoulli(p.PRate) {
						continue
					}
					variance := p.GoodVar
					if class == Careless {
						variance = p.CarelessVar
					}
					if pr, ok := pickUnrated(rng, active, r, hasRated); ok {
						emitHonest(r, pr, day+rng.Float64(), variance, class)
					}
				default: // PotentialCollaborative
					if recruited[r] && inRecruitWindow {
						if !rng.Bernoulli(p.A1 * p.PRate) {
							continue
						}
						pr := dishonest[rng.Intn(len(dishonest))]
						if hasRated(r, pr.ID) {
							continue
						}
						value := randx.Quantize(
							rng.NormalVar(pr.Quality+p.BiasShift2, p.BadVar), p.Levels, false)
						trace.Ratings = append(trace.Ratings, LabeledRating{
							Rating: rating.Rating{Rater: r, Object: pr.ID, Value: value, Time: day + rng.Float64()},
							Class:  Type2Collaborative,
							Unfair: true,
						})
						markRated(r, pr.ID)
						continue
					}
					if !rng.Bernoulli(p.A2 * p.PRate) {
						continue
					}
					if pr, ok := pickUnrated(rng, active, r, hasRated); ok {
						emitHonest(r, pr, day+rng.Float64(), p.GoodVar, Reliable)
					}
				}
			}
		}
	}

	SortByTime(trace.Ratings)
	return trace, nil
}

// pickUnrated uniformly selects one of the active products the rater
// has not yet rated.
func pickUnrated(rng *randx.Rand, active []Product, r rating.RaterID, hasRated func(rating.RaterID, rating.ObjectID) bool) (Product, bool) {
	candidates := make([]Product, 0, len(active))
	for _, pr := range active {
		if !hasRated(r, pr.ID) {
			candidates = append(candidates, pr)
		}
	}
	if len(candidates) == 0 {
		return Product{}, false
	}
	return candidates[rng.Intn(len(candidates))], true
}
