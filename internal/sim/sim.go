// Package sim is the rating-generation substrate: it synthesizes the
// paper's two evaluation workloads — the single-object illustrative
// scenario of §III.A.2 (Figs 2-4, the 500-run detection-rate study) and
// the 800-rater/60-product/360-day marketplace of §IV (Figs 6-12) —
// with ground-truth labels on every rating and rater so detection and
// false-alarm ratios can be scored exactly.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/rating"
)

// RaterClass is a rater's ground-truth behavioral class.
type RaterClass int

const (
	// Reliable raters rate honestly with goodVar noise.
	Reliable RaterClass = iota + 1
	// Careless raters rate honestly but with larger carelessVar noise.
	Careless
	// PotentialCollaborative (PC) raters behave reliably until recruited
	// by a dishonest product's owner, then emit type-2 biased ratings.
	PotentialCollaborative
	// Type1Collaborative is an honest rater whose rating the owner
	// shifted by biasShift1 (§III.A.2's first recruitment channel).
	Type1Collaborative
	// Type2Collaborative is a rater recruited to produce entirely new
	// biased ratings (the smart strategy the paper targets).
	Type2Collaborative
)

// String names the class.
func (c RaterClass) String() string {
	switch c {
	case Reliable:
		return "reliable"
	case Careless:
		return "careless"
	case PotentialCollaborative:
		return "potential-collaborative"
	case Type1Collaborative:
		return "type1-collaborative"
	case Type2Collaborative:
		return "type2-collaborative"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Honest reports whether the class rates honestly.
func (c RaterClass) Honest() bool {
	return c == Reliable || c == Careless || c == PotentialCollaborative
}

// LabeledRating is a rating with its ground truth attached.
type LabeledRating struct {
	Rating rating.Rating
	// Class is the emitting rater's class at emission time (a PC rater
	// emits Reliable-class ratings while unrecruited and
	// Type2Collaborative ones while recruited).
	Class RaterClass
	// Unfair marks ratings that are biased by construction (type 1 or
	// type 2).
	Unfair bool
}

// Ratings strips labels, returning the plain time-sorted ratings.
func Ratings(ls []LabeledRating) []rating.Rating {
	out := make([]rating.Rating, len(ls))
	for i, l := range ls {
		out[i] = l.Rating
	}
	return out
}

// SortByTime sorts labeled ratings in place by time (stable).
func SortByTime(ls []LabeledRating) {
	sort.SliceStable(ls, func(i, j int) bool {
		return ls[i].Rating.Time < ls[j].Rating.Time
	})
}
