package sim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randx"
	"repro/internal/rating"
	"repro/internal/stat"
)

func TestRaterClassString(t *testing.T) {
	cases := map[RaterClass]string{
		Reliable:               "reliable",
		Careless:               "careless",
		PotentialCollaborative: "potential-collaborative",
		Type1Collaborative:     "type1-collaborative",
		Type2Collaborative:     "type2-collaborative",
		RaterClass(77):         "class(77)",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %s, want %s", int(c), c.String(), want)
		}
	}
}

func TestRaterClassHonest(t *testing.T) {
	if !Reliable.Honest() || !Careless.Honest() || !PotentialCollaborative.Honest() {
		t.Fatal("honest classes misreported")
	}
	if Type1Collaborative.Honest() || Type2Collaborative.Honest() {
		t.Fatal("collaborative classes misreported")
	}
}

func TestRatingsStripAndSort(t *testing.T) {
	ls := []LabeledRating{
		{Rating: rating.Rating{Rater: 1, Value: 0.5, Time: 9}},
		{Rating: rating.Rating{Rater: 2, Value: 0.6, Time: 3}},
	}
	SortByTime(ls)
	if ls[0].Rating.Rater != 2 {
		t.Fatalf("sort failed: %+v", ls)
	}
	plain := Ratings(ls)
	if len(plain) != 2 || plain[0].Time != 3 {
		t.Fatalf("Ratings = %+v", plain)
	}
}

func TestDefaultIllustrativeValid(t *testing.T) {
	if err := DefaultIllustrative().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIllustrativeValidation(t *testing.T) {
	mutations := []func(*IllustrativeParams){
		func(p *IllustrativeParams) { p.SimuTime = 0 },
		func(p *IllustrativeParams) { p.ArrivalRate = -1 },
		func(p *IllustrativeParams) { p.RLevels = 1 },
		func(p *IllustrativeParams) { p.QualityStart = 1.5 },
		func(p *IllustrativeParams) { p.GoodVar = -0.1 },
		func(p *IllustrativeParams) { p.AEnd = 99 },
		func(p *IllustrativeParams) { p.AStart, p.AEnd = 40, 30 },
		func(p *IllustrativeParams) { p.RecruitPower1 = 1.5 },
		func(p *IllustrativeParams) { p.RecruitPower2 = -1 },
	}
	for i, mutate := range mutations {
		p := DefaultIllustrative()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, p)
		}
	}
}

func TestIllustrativeQualityDrift(t *testing.T) {
	p := DefaultIllustrative()
	if q := p.Quality(0); q != 0.7 {
		t.Fatalf("quality(0) = %g", q)
	}
	if q := p.Quality(60); math.Abs(q-0.8) > 1e-12 {
		t.Fatalf("quality(60) = %g", q)
	}
	if q := p.Quality(30); math.Abs(q-0.75) > 1e-12 {
		t.Fatalf("quality(30) = %g", q)
	}
	// Out of range clamps.
	if q := p.Quality(-5); q != 0.7 {
		t.Fatalf("quality(-5) = %g", q)
	}
	if q := p.Quality(100); math.Abs(q-0.8) > 1e-12 {
		t.Fatalf("quality(100) = %g", q)
	}
}

func TestGenerateIllustrativeStructure(t *testing.T) {
	rng := randx.New(1)
	ls, err := GenerateIllustrative(rng, DefaultIllustrative())
	if err != nil {
		t.Fatal(err)
	}
	// Expect roughly 3/day * 60 honest + 3/day * 14 type-2 ratings.
	if len(ls) < 150 || len(ls) > 320 {
		t.Fatalf("trace size %d outside plausible range", len(ls))
	}
	var type1, type2, honest int
	for i, l := range ls {
		if i > 0 && ls[i].Rating.Time < ls[i-1].Rating.Time {
			t.Fatal("trace not time-sorted")
		}
		if err := l.Rating.Validate(); err != nil {
			t.Fatalf("invalid rating: %v", err)
		}
		switch l.Class {
		case Type1Collaborative:
			type1++
			if !l.Unfair {
				t.Fatal("type-1 rating not marked unfair")
			}
			if !(DefaultIllustrative()).InAttack(l.Rating.Time) {
				t.Fatal("type-1 rating outside attack interval")
			}
		case Type2Collaborative:
			type2++
			if !l.Unfair {
				t.Fatal("type-2 rating not marked unfair")
			}
			if l.Rating.Rater < 100000 {
				t.Fatal("type-2 rater ID not in reserved range")
			}
		default:
			honest++
			if l.Unfair {
				t.Fatal("honest rating marked unfair")
			}
		}
	}
	if type1 == 0 || type2 == 0 || honest == 0 {
		t.Fatalf("missing class: honest=%d type1=%d type2=%d", honest, type1, type2)
	}
}

func TestGenerateIllustrativeNoAttack(t *testing.T) {
	p := DefaultIllustrative()
	p.Attack = false
	ls, err := GenerateIllustrative(randx.New(2), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range ls {
		if l.Unfair || l.Class != Reliable {
			t.Fatalf("attack-free trace contains %+v", l)
		}
	}
}

func TestGenerateIllustrativeBiasRaisesMean(t *testing.T) {
	// Mean rating in the attack interval must exceed the honest-only
	// mean there (the collusion boosts the aggregate, Fig 4 upper).
	var attacked, clean []float64
	for seed := int64(0); seed < 20; seed++ {
		p := DefaultIllustrative()
		ls, err := GenerateIllustrative(randx.New(seed), p)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range ls {
			if p.InAttack(l.Rating.Time) {
				attacked = append(attacked, l.Rating.Value)
			}
		}
		p.Attack = false
		ls, err = GenerateIllustrative(randx.New(seed), p)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range ls {
			if l.Rating.Time >= p.AStart && l.Rating.Time <= p.AEnd {
				clean = append(clean, l.Rating.Value)
			}
		}
	}
	if stat.Mean(attacked) <= stat.Mean(clean)+0.03 {
		t.Fatalf("attack mean %.3f not above clean mean %.3f",
			stat.Mean(attacked), stat.Mean(clean))
	}
}

func TestDefaultMarketplaceValid(t *testing.T) {
	if err := DefaultMarketplace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMarketplaceValidation(t *testing.T) {
	mutations := []func(*MarketplaceParams){
		func(p *MarketplaceParams) { p.Reliable = -1 },
		func(p *MarketplaceParams) { p.Reliable, p.Careless, p.PC = 0, 0, 0 },
		func(p *MarketplaceParams) { p.Months = 0 },
		func(p *MarketplaceParams) { p.HonestPerMonth, p.DishonestPerMonth = 0, 0 },
		func(p *MarketplaceParams) { p.QualityHi = 0.2 },
		func(p *MarketplaceParams) { p.BadVar = -1 },
		func(p *MarketplaceParams) { p.RecruitPower3 = 2 },
		func(p *MarketplaceParams) { p.RecruitDays = 99 },
		func(p *MarketplaceParams) { p.PRate = 0 },
		func(p *MarketplaceParams) { p.A1 = 0.5 },
		func(p *MarketplaceParams) { p.A1 = 80 }, // a1*pRate > 1
		func(p *MarketplaceParams) { p.A2 = 2 },
		func(p *MarketplaceParams) { p.Levels = 1 },
	}
	for i, mutate := range mutations {
		p := DefaultMarketplace()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRaterClassOfLayout(t *testing.T) {
	p := DefaultMarketplace()
	if p.RaterClassOf(0) != Reliable || p.RaterClassOf(399) != Reliable {
		t.Fatal("reliable range wrong")
	}
	if p.RaterClassOf(400) != Careless || p.RaterClassOf(599) != Careless {
		t.Fatal("careless range wrong")
	}
	if p.RaterClassOf(600) != PotentialCollaborative || p.RaterClassOf(799) != PotentialCollaborative {
		t.Fatal("PC range wrong")
	}
	if p.TotalRaters() != 800 {
		t.Fatalf("total = %d", p.TotalRaters())
	}
}

// smallMarketplace shrinks the scenario for fast tests while keeping
// its structure.
func smallMarketplace() MarketplaceParams {
	p := DefaultMarketplace()
	p.Reliable, p.Careless, p.PC = 60, 30, 30
	p.Months = 3
	p.PRate = 0.05
	return p
}

func TestGenerateMarketplaceStructure(t *testing.T) {
	tr, err := GenerateMarketplace(randx.New(1), smallMarketplace())
	if err != nil {
		t.Fatal(err)
	}
	p := tr.Params
	if len(tr.Products) != 15 {
		t.Fatalf("%d products, want 15", len(tr.Products))
	}
	if len(tr.HonestProducts()) != 12 || len(tr.DishonestProducts()) != 3 {
		t.Fatalf("honest/dishonest split wrong")
	}
	if len(tr.Recruited) != 3 {
		t.Fatalf("recruited months = %d", len(tr.Recruited))
	}
	for m, rec := range tr.Recruited {
		want := int(p.RecruitPower3 * float64(p.PC))
		if len(rec) != want {
			t.Fatalf("month %d recruited %d, want %d", m, len(rec), want)
		}
		for id := range rec {
			if p.RaterClassOf(id) != PotentialCollaborative {
				t.Fatalf("recruited non-PC rater %d", id)
			}
		}
	}
	seen := make(map[rating.RaterID]map[rating.ObjectID]bool)
	for i, l := range tr.Ratings {
		if i > 0 && tr.Ratings[i].Rating.Time < tr.Ratings[i-1].Rating.Time {
			t.Fatal("not time-sorted")
		}
		if err := l.Rating.Validate(); err != nil {
			t.Fatal(err)
		}
		if l.Rating.Value < 0.1-1e-9 {
			t.Fatalf("value %g below one-based scale floor", l.Rating.Value)
		}
		// One rating per rater per product.
		if seen[l.Rating.Rater] == nil {
			seen[l.Rating.Rater] = make(map[rating.ObjectID]bool)
		}
		if seen[l.Rating.Rater][l.Rating.Object] {
			t.Fatalf("rater %d rated product %d twice", l.Rating.Rater, l.Rating.Object)
		}
		seen[l.Rating.Rater][l.Rating.Object] = true
		// Ratings must land in the product's month.
		pr := tr.Products[int(l.Rating.Object)-1]
		monthStart := float64(pr.Month * p.DaysPerMonth)
		if l.Rating.Time < monthStart || l.Rating.Time >= monthStart+float64(p.DaysPerMonth)+1 {
			t.Fatalf("rating at %g for month-%d product", l.Rating.Time, pr.Month)
		}
	}
}

func TestMarketplaceUnfairOnlyOnDishonest(t *testing.T) {
	tr, err := GenerateMarketplace(randx.New(2), smallMarketplace())
	if err != nil {
		t.Fatal(err)
	}
	dishonest := make(map[rating.ObjectID]bool)
	for _, pr := range tr.DishonestProducts() {
		dishonest[pr.ID] = true
	}
	var unfair int
	for _, l := range tr.Ratings {
		if l.Unfair {
			unfair++
			if !dishonest[l.Rating.Object] {
				t.Fatalf("unfair rating on honest product %d", l.Rating.Object)
			}
			if l.Class != Type2Collaborative {
				t.Fatalf("unfair rating with class %v", l.Class)
			}
			if tr.Params.RaterClassOf(l.Rating.Rater) != PotentialCollaborative {
				t.Fatalf("unfair rating from non-PC rater %d", l.Rating.Rater)
			}
		}
	}
	if unfair == 0 {
		t.Fatal("no unfair ratings generated")
	}
}

func TestMarketplaceBiasVisibleOnDishonestProducts(t *testing.T) {
	// Simple average over a dishonest product must exceed its quality by
	// a noticeable margin (this is what Fig 11 plots for M1).
	var diffs []float64
	for seed := int64(0); seed < 5; seed++ {
		tr, err := GenerateMarketplace(randx.New(seed), smallMarketplace())
		if err != nil {
			t.Fatal(err)
		}
		for _, pr := range tr.DishonestProducts() {
			ls := tr.ByProduct(pr.ID)
			if len(ls) == 0 {
				continue
			}
			var sum float64
			for _, l := range ls {
				sum += l.Rating.Value
			}
			diffs = append(diffs, sum/float64(len(ls))-pr.Quality)
		}
	}
	if stat.Mean(diffs) < 0.05 {
		t.Fatalf("mean dishonest-product boost %.3f too small", stat.Mean(diffs))
	}
}

func TestMarketplaceDeterminism(t *testing.T) {
	a, err := GenerateMarketplace(randx.New(7), smallMarketplace())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateMarketplace(randx.New(7), smallMarketplace())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Ratings) != len(b.Ratings) {
		t.Fatalf("sizes differ: %d vs %d", len(a.Ratings), len(b.Ratings))
	}
	for i := range a.Ratings {
		if a.Ratings[i] != b.Ratings[i] {
			t.Fatalf("rating %d differs", i)
		}
	}
}

// Property: the marketplace trace respects its invariants across
// random parameterizations.
func TestMarketplaceInvariantsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		p := smallMarketplace()
		p.RecruitPower3 = rng.Float64()
		p.BiasShift2 = rng.Uniform(0.05, 0.25)
		p.A1 = rng.Uniform(2, 8)
		tr, err := GenerateMarketplace(rng, p)
		if err != nil {
			return false
		}
		for _, pr := range tr.Products {
			if pr.Quality < p.QualityLo || pr.Quality > p.QualityHi {
				return false
			}
		}
		for _, l := range tr.Ratings {
			if l.Rating.Validate() != nil {
				return false
			}
			if l.Unfair != (l.Class == Type2Collaborative) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
