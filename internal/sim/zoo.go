package sim

import (
	"fmt"

	"repro/internal/randx"
	"repro/internal/rating"
)

// ZooParams parameterize the adversary-zoo background workload: a
// small marketplace of long-lived objects with static true qualities,
// rated by a fixed population of persistent honest raters. Unlike the
// §III.A.2 illustrative trace (fresh rater ID per arrival), raters
// here keep their identity for the whole run, which is what gives the
// collusion graph co-rating profiles and the iterative filter weight
// histories to work with. Attack campaigns from the attack package are
// overlaid on top of this background by the matrix experiment.
type ZooParams struct {
	// SimuTime is the simulation length in days. Zero means 60.
	SimuTime float64
	// Objects is how many objects exist, IDs 1..Objects. Zero means 6.
	Objects int
	// Raters is the honest population size, IDs 0..Raters-1. Zero
	// means 40.
	Raters int
	// PRate is the daily probability that a rater rates (one uniformly
	// chosen object). Zero means 0.8.
	PRate float64
	// GoodVar is the honest rating variance around an object's quality.
	// Zero means 0.05 (persistent raters track quality closely, so a
	// coordinated bias stands out).
	GoodVar float64
	// QualityLo and QualityHi bound the per-object static qualities,
	// drawn uniformly. Zeros mean [0.3, 0.85].
	QualityLo, QualityHi float64
	// RLevels is the rating scale size, scores i/(RLevels-1). Zero
	// means 11 (the §III.A.2 scale).
	RLevels int
}

// DefaultZoo returns the zoo background defaults.
func DefaultZoo() ZooParams {
	return ZooParams{
		SimuTime:  60,
		Objects:   6,
		Raters:    40,
		PRate:     0.8,
		GoodVar:   0.05,
		QualityLo: 0.3,
		QualityHi: 0.85,
		RLevels:   11,
	}
}

func (p ZooParams) withDefaults() ZooParams {
	d := DefaultZoo()
	if p.SimuTime == 0 {
		p.SimuTime = d.SimuTime
	}
	if p.Objects == 0 {
		p.Objects = d.Objects
	}
	if p.Raters == 0 {
		p.Raters = d.Raters
	}
	if p.PRate == 0 {
		p.PRate = d.PRate
	}
	if p.GoodVar == 0 {
		p.GoodVar = d.GoodVar
	}
	if p.QualityLo == 0 && p.QualityHi == 0 {
		p.QualityLo, p.QualityHi = d.QualityLo, d.QualityHi
	}
	if p.RLevels == 0 {
		p.RLevels = d.RLevels
	}
	return p
}

// Validate reports parameter errors after defaulting.
func (p ZooParams) Validate() error {
	p = p.withDefaults()
	switch {
	case p.SimuTime <= 0:
		return fmt.Errorf("sim: zoo simuTime %g", p.SimuTime)
	case p.Objects < 1:
		return fmt.Errorf("sim: zoo objects %d", p.Objects)
	case p.Raters < 1:
		return fmt.Errorf("sim: zoo raters %d", p.Raters)
	case p.PRate <= 0 || p.PRate > 1:
		return fmt.Errorf("sim: zoo pRate %g outside (0,1]", p.PRate)
	case p.GoodVar < 0:
		return fmt.Errorf("sim: zoo negative variance")
	case p.QualityLo < 0 || p.QualityHi > 1 || p.QualityHi < p.QualityLo:
		return fmt.Errorf("sim: zoo quality range [%g,%g]", p.QualityLo, p.QualityHi)
	case p.RLevels < 2:
		return fmt.Errorf("sim: zoo rLevels %d", p.RLevels)
	}
	return nil
}

// ZooTrace is a generated zoo background.
type ZooTrace struct {
	Params ZooParams
	// Quality[i] is the static true quality of object i+1.
	Quality []float64
	// Ratings are the honest background ratings, time-sorted.
	Ratings []LabeledRating
}

// ObjectIDs returns the trace's object IDs, ascending.
func (t *ZooTrace) ObjectIDs() []rating.ObjectID {
	out := make([]rating.ObjectID, len(t.Quality))
	for i := range out {
		out[i] = rating.ObjectID(i + 1)
	}
	return out
}

// QualityOf is the trace's quality function in the attack package's
// Quality shape (object, time) — qualities are static, so time is
// ignored. Unknown objects read as 0.5.
func (t *ZooTrace) QualityOf(obj rating.ObjectID, _ float64) float64 {
	i := int(obj) - 1
	if i < 0 || i >= len(t.Quality) {
		return 0.5
	}
	return t.Quality[i]
}

// GenerateZoo synthesizes one zoo background: per-object qualities
// first (one uniform draw each, in object order), then day by day each
// rater flips PRate and, on success, rates one uniformly chosen object
// honestly at a jittered time. The trace is a pure function of rng's
// seed and the parameters.
func GenerateZoo(rng *randx.Rand, p ZooParams) (*ZooTrace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()

	trace := &ZooTrace{Params: p, Quality: make([]float64, p.Objects)}
	for i := range trace.Quality {
		trace.Quality[i] = rng.Uniform(p.QualityLo, p.QualityHi)
	}

	days := int(p.SimuTime)
	for d := 0; d < days; d++ {
		for id := 0; id < p.Raters; id++ {
			if !rng.Bernoulli(p.PRate) {
				continue
			}
			obj := rating.ObjectID(rng.Intn(p.Objects) + 1)
			value := rng.NormalVar(trace.QualityOf(obj, 0), p.GoodVar)
			trace.Ratings = append(trace.Ratings, LabeledRating{
				Rating: rating.Rating{
					Rater:  rating.RaterID(id),
					Object: obj,
					Value:  randx.Quantize(value, p.RLevels, true),
					Time:   float64(d) + rng.Float64(),
				},
				Class: Reliable,
			})
		}
	}
	SortByTime(trace.Ratings)
	return trace, nil
}
