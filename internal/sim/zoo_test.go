package sim

import (
	"testing"

	"repro/internal/randx"
	"repro/internal/rating"
)

func TestGenerateZooShape(t *testing.T) {
	trace, err := GenerateZoo(randx.New(1), ZooParams{})
	if err != nil {
		t.Fatal(err)
	}
	p := trace.Params
	if len(trace.Quality) != p.Objects {
		t.Fatalf("%d qualities for %d objects", len(trace.Quality), p.Objects)
	}
	for i, q := range trace.Quality {
		if q < p.QualityLo || q > p.QualityHi {
			t.Fatalf("object %d quality %g outside [%g,%g]", i+1, q, p.QualityLo, p.QualityHi)
		}
	}
	// Expected volume: Raters * days * PRate, within a loose band.
	expect := float64(p.Raters) * p.SimuTime * p.PRate
	if n := float64(len(trace.Ratings)); n < 0.8*expect || n > 1.2*expect {
		t.Fatalf("%g ratings, expected near %g", n, expect)
	}
	seen := map[rating.RaterID]int{}
	for i, l := range trace.Ratings {
		if l.Unfair || l.Class != Reliable {
			t.Fatalf("zoo background emitted non-honest rating %+v", l)
		}
		r := l.Rating
		if r.Object < 1 || int(r.Object) > p.Objects {
			t.Fatalf("object %d out of range", r.Object)
		}
		if r.Time < 0 || r.Time > p.SimuTime {
			t.Fatalf("time %g out of range", r.Time)
		}
		if i > 0 && trace.Ratings[i-1].Rating.Time > r.Time {
			t.Fatal("ratings not time-sorted")
		}
		seen[r.Rater]++
	}
	// Persistent identities: nearly every rater appears many times.
	if len(seen) != p.Raters {
		t.Fatalf("%d distinct raters, want %d", len(seen), p.Raters)
	}
	for id, n := range seen {
		if n < 10 {
			t.Fatalf("rater %d has only %d ratings; zoo raters are persistent", id, n)
		}
	}
}

func TestGenerateZooDeterministic(t *testing.T) {
	a, err := GenerateZoo(randx.New(7), ZooParams{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateZoo(randx.New(7), ZooParams{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Ratings) != len(b.Ratings) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Ratings), len(b.Ratings))
	}
	for i := range a.Ratings {
		if a.Ratings[i] != b.Ratings[i] {
			t.Fatalf("rating %d differs", i)
		}
	}
}

func TestZooQualityOf(t *testing.T) {
	trace, err := GenerateZoo(randx.New(2), ZooParams{Objects: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := trace.QualityOf(2, 10); got != trace.Quality[1] {
		t.Fatalf("QualityOf(2) = %g, want %g", got, trace.Quality[1])
	}
	if got := trace.QualityOf(99, 0); got != 0.5 {
		t.Fatalf("unknown object quality %g, want 0.5", got)
	}
	if got, want := len(trace.ObjectIDs()), 3; got != want {
		t.Fatalf("%d object IDs, want %d", got, want)
	}
}

func TestZooValidate(t *testing.T) {
	bad := []ZooParams{
		{SimuTime: -1},
		{Objects: -1},
		{Raters: -2},
		{PRate: 1.5},
		{QualityLo: 0.9, QualityHi: 0.1},
		{RLevels: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
}
