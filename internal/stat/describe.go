// Package stat provides the descriptive-statistics substrate: moments,
// quantiles, histograms, moving averages, autocorrelation and a
// Ljung-Box whiteness test. The paper's premise is that honest ratings
// minus their mean behave like white noise while collusion injects a
// correlated signal (§III.A.1); this package supplies the estimators
// that premise is stated — and tested — in.
package stat

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that need at least one sample.
var ErrEmpty = errors.New("stat: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the population variance (divide by n) of xs, the
// convention used throughout the paper's generator parameters. It
// returns 0 for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs))
}

// SampleVariance returns the unbiased (divide by n-1) variance.
func SampleVariance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return Variance(xs) * float64(n) / float64(n-1)
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the minimum and maximum of xs. It returns ErrEmpty for
// an empty slice.
func MinMax(xs []float64) (minV, maxV float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	minV, maxV = xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	return minV, maxV, nil
}

// Quantile returns the q-quantile (q in [0, 1]) of xs using linear
// interpolation between order statistics (type-7, the common default).
// xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if math.IsNaN(q) || q < 0 || q > 1 {
		return 0, fmt.Errorf("stat: quantile q=%g outside [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 0.5-quantile.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// Summary bundles the moments of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64
	StdDev   float64
	Min      float64
	Max      float64
}

// Describe computes a Summary of xs. It returns ErrEmpty for an empty
// sample.
func Describe(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	minV, maxV, err := MinMax(xs)
	if err != nil {
		return Summary{}, err
	}
	v := Variance(xs)
	return Summary{
		N:        len(xs),
		Mean:     Mean(xs),
		Variance: v,
		StdDev:   math.Sqrt(v),
		Min:      minV,
		Max:      maxV,
	}, nil
}

// Demean returns xs shifted to zero mean, leaving xs untouched. The
// paper inspects x(t) − E[x(t)] for whiteness; this is that operator.
func Demean(xs []float64) []float64 {
	out := make([]float64, len(xs))
	m := Mean(xs)
	for i, v := range xs {
		out[i] = v - m
	}
	return out
}
