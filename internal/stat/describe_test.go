package stat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %g", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %g, want 2.5", got)
	}
}

func TestVariance(t *testing.T) {
	if got := Variance([]float64{5}); got != 0 {
		t.Fatalf("Variance of 1 sample = %g", got)
	}
	// Population variance of {1,2,3,4} is 1.25.
	if got := Variance([]float64{1, 2, 3, 4}); math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("Variance = %g, want 1.25", got)
	}
	// Sample variance of the same is 5/3.
	if got := SampleVariance([]float64{1, 2, 3, 4}); math.Abs(got-5.0/3) > 1e-12 {
		t.Fatalf("SampleVariance = %g, want 5/3", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("StdDev = %g, want 1", got)
	}
}

func TestMinMax(t *testing.T) {
	minV, maxV, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil {
		t.Fatal(err)
	}
	if minV != -1 || maxV != 7 {
		t.Fatalf("MinMax = %g,%g", minV, maxV)
	}
	if _, _, err := MinMax(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {1.0 / 3, 2},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Quantile([]float64{1}, 1.5); err == nil {
		t.Fatal("q > 1 accepted")
	}
	if _, err := Quantile([]float64{1}, math.NaN()); err == nil {
		t.Fatal("NaN q accepted")
	}
}

func TestQuantileSingle(t *testing.T) {
	got, err := Quantile([]float64{42}, 0.9)
	if err != nil || got != 42 {
		t.Fatalf("got %g, %v", got, err)
	}
}

func TestMedian(t *testing.T) {
	got, err := Median([]float64{9, 1, 5})
	if err != nil || got != 5 {
		t.Fatalf("Median = %g, %v", got, err)
	}
}

func TestDescribe(t *testing.T) {
	s, err := Describe([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("Describe = %+v", s)
	}
	if math.Abs(s.Variance-1.25) > 1e-12 || math.Abs(s.StdDev-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("Describe moments = %+v", s)
	}
	if _, err := Describe(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
}

func TestDemean(t *testing.T) {
	xs := []float64{1, 2, 3}
	out := Demean(xs)
	if Mean(out) > 1e-12 {
		t.Fatalf("demeaned mean = %g", Mean(out))
	}
	if xs[0] != 1 {
		t.Fatal("Demean mutated its input")
	}
	if out[0] != -1 || out[2] != 1 {
		t.Fatalf("Demean = %v", out)
	}
}

// Property: quantile is monotone in q and bracketed by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	prop := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 1 + local.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = local.NormFloat64() * 10
		}
		q1, q2 := local.Float64(), local.Float64()
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, err1 := Quantile(xs, q1)
		v2, err2 := Quantile(xs, q2)
		if err1 != nil || err2 != nil {
			return false
		}
		minV, maxV, _ := MinMax(xs)
		return v1 <= v2+1e-12 && v1 >= minV-1e-12 && v2 <= maxV+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is translation invariant and scales quadratically.
func TestVarianceInvarianceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 2 + local.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = local.NormFloat64()
		}
		shift := local.NormFloat64() * 100
		scale := 1 + local.Float64()*5
		shifted := make([]float64, n)
		scaled := make([]float64, n)
		for i, v := range xs {
			shifted[i] = v + shift
			scaled[i] = v * scale
		}
		v := Variance(xs)
		if math.Abs(Variance(shifted)-v) > 1e-6*(1+v) {
			return false
		}
		return math.Abs(Variance(scaled)-scale*scale*v) < 1e-6*(1+scale*scale*v)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
