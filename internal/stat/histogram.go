package stat

import (
	"fmt"
	"math"
)

// Histogram counts samples into equal-width bins over [Lo, Hi]. It
// backs Fig 3 (rating histograms) and the entropy-based baseline
// filter, which measures the uncertainty of the rating distribution.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins spanning
// [lo, hi]. It returns an error when the range is empty or bins < 1.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stat: histogram with %d bins", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stat: histogram range [%g,%g] empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one sample. Samples outside [Lo, Hi] are clamped into the
// edge bins, matching how rating scales clamp scores.
func (h *Histogram) Add(v float64) {
	h.Counts[h.binOf(v)]++
	h.total++
}

// AddAll records every sample in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, v := range xs {
		h.Add(v)
	}
}

// Remove un-records one sample previously added; used by the sequential
// entropy filter to test "distribution without this rating". Removing a
// value that was never added corrupts the histogram; callers own that
// invariant.
func (h *Histogram) Remove(v float64) {
	b := h.binOf(v)
	h.Counts[b]--
	h.total--
}

func (h *Histogram) binOf(v float64) int {
	if v <= h.Lo {
		return 0
	}
	if v >= h.Hi {
		return len(h.Counts) - 1
	}
	b := int(float64(len(h.Counts)) * (v - h.Lo) / (h.Hi - h.Lo))
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	return b
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int { return h.total }

// Probabilities returns the normalized bin frequencies. All-zero when
// the histogram is empty.
func (h *Histogram) Probabilities() []float64 {
	p := make([]float64, len(h.Counts))
	if h.total == 0 {
		return p
	}
	for i, c := range h.Counts {
		p[i] = float64(c) / float64(h.total)
	}
	return p
}

// Entropy returns the Shannon entropy (bits) of the bin distribution.
// An empty histogram has zero entropy.
func (h *Histogram) Entropy() float64 {
	return EntropyBits(h.Probabilities())
}

// EntropyBits returns the Shannon entropy in bits of a probability
// vector. Zero entries contribute nothing; the vector need not be
// exactly normalized (it is treated as weights).
func EntropyBits(p []float64) float64 {
	var total float64
	for _, v := range p {
		if v > 0 {
			total += v
		}
	}
	if total == 0 {
		return 0
	}
	var hEnt float64
	for _, v := range p {
		if v <= 0 {
			continue
		}
		q := v / total
		hEnt -= q * math.Log2(q)
	}
	return hEnt
}

// BinaryEntropy returns H(p) = -p log2 p - (1-p) log2 (1-p), the binary
// entropy function used by the entropy trust model of [8].
func BinaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}
