package stat

import (
	"math"
	"testing"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("0 bins accepted")
	}
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{0, 0.05, 0.15, 0.95, 1.0})
	if h.Counts[0] != 2 {
		t.Fatalf("bin 0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 {
		t.Fatalf("bin 1 = %d, want 1", h.Counts[1])
	}
	if h.Counts[9] != 2 {
		t.Fatalf("bin 9 = %d, want 2", h.Counts[9])
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	h, _ := NewHistogram(0, 1, 4)
	h.Add(-3)
	h.Add(7)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
}

func TestHistogramRemove(t *testing.T) {
	h, _ := NewHistogram(0, 1, 5)
	h.Add(0.3)
	h.Add(0.3)
	h.Remove(0.3)
	if h.Counts[1] != 1 || h.Total() != 1 {
		t.Fatalf("after remove: counts=%v total=%d", h.Counts, h.Total())
	}
}

func TestHistogramProbabilities(t *testing.T) {
	h, _ := NewHistogram(0, 1, 2)
	if p := h.Probabilities(); p[0] != 0 || p[1] != 0 {
		t.Fatalf("empty probabilities = %v", p)
	}
	h.AddAll([]float64{0.1, 0.2, 0.9, 0.8})
	p := h.Probabilities()
	if p[0] != 0.5 || p[1] != 0.5 {
		t.Fatalf("probabilities = %v", p)
	}
}

func TestHistogramEntropy(t *testing.T) {
	h, _ := NewHistogram(0, 1, 4)
	if h.Entropy() != 0 {
		t.Fatal("empty histogram entropy != 0")
	}
	// All mass in one bin: zero entropy.
	h.Add(0.1)
	h.Add(0.1)
	if h.Entropy() != 0 {
		t.Fatalf("point-mass entropy = %g", h.Entropy())
	}
	// Uniform over 4 bins: 2 bits.
	h2, _ := NewHistogram(0, 1, 4)
	h2.AddAll([]float64{0.1, 0.3, 0.6, 0.9})
	if math.Abs(h2.Entropy()-2) > 1e-12 {
		t.Fatalf("uniform entropy = %g, want 2", h2.Entropy())
	}
}

func TestEntropyBits(t *testing.T) {
	if got := EntropyBits([]float64{0.5, 0.5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("H(0.5,0.5) = %g, want 1", got)
	}
	if got := EntropyBits([]float64{1, 0}); got != 0 {
		t.Fatalf("H(1,0) = %g", got)
	}
	if got := EntropyBits(nil); got != 0 {
		t.Fatalf("H() = %g", got)
	}
	// Unnormalized weights behave like their normalization.
	a := EntropyBits([]float64{2, 2, 4})
	b := EntropyBits([]float64{0.25, 0.25, 0.5})
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("weights %g vs normalized %g", a, b)
	}
}

func TestBinaryEntropy(t *testing.T) {
	if got := BinaryEntropy(0.5); math.Abs(got-1) > 1e-12 {
		t.Fatalf("H(0.5) = %g", got)
	}
	if BinaryEntropy(0) != 0 || BinaryEntropy(1) != 0 {
		t.Fatal("H at edges != 0")
	}
	// Symmetry.
	if math.Abs(BinaryEntropy(0.3)-BinaryEntropy(0.7)) > 1e-12 {
		t.Fatal("binary entropy not symmetric")
	}
}
