package stat

import "sort"

// AUC returns the area under the ROC curve for scores against binary
// labels, computed as the Mann-Whitney rank statistic with averaged
// tie ranks: the probability that a uniformly drawn positive outscores
// a uniformly drawn negative (ties count half). It returns 0.5 — the
// chance-level diagonal — when either class is empty, so degenerate
// detector×attack cells stay comparable instead of poisoning a mean.
func AUC(scores []float64, labels []bool) float64 {
	if len(scores) != len(labels) {
		return 0.5
	}
	var pos, neg int
	for _, l := range labels {
		if l {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}

	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	// Sum the positives' ranks, averaging ranks across tied scores.
	var rankSum float64
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		// 1-based ranks i+1..j share the average rank.
		avg := float64(i+1+j) / 2
		for k := i; k < j; k++ {
			if labels[idx[k]] {
				rankSum += avg
			}
		}
		i = j
	}
	u := rankSum - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg))
}
