package stat

import (
	"math"
	"testing"
)

func TestAUCPerfectSeparation(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []bool{false, false, true, true}
	if got := AUC(scores, labels); got != 1 {
		t.Fatalf("AUC = %g, want 1", got)
	}
	inverted := []bool{true, true, false, false}
	if got := AUC(scores, inverted); got != 0 {
		t.Fatalf("inverted AUC = %g, want 0", got)
	}
}

func TestAUCAllTied(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []bool{true, false, true, false}
	if got := AUC(scores, labels); got != 0.5 {
		t.Fatalf("all-tied AUC = %g, want 0.5", got)
	}
}

func TestAUCDegenerateClasses(t *testing.T) {
	if got := AUC([]float64{1, 2}, []bool{true, true}); got != 0.5 {
		t.Fatalf("no-negatives AUC = %g, want 0.5", got)
	}
	if got := AUC([]float64{1, 2}, []bool{false, false}); got != 0.5 {
		t.Fatalf("no-positives AUC = %g, want 0.5", got)
	}
	if got := AUC(nil, nil); got != 0.5 {
		t.Fatalf("empty AUC = %g, want 0.5", got)
	}
	if got := AUC([]float64{1}, []bool{true, false}); got != 0.5 {
		t.Fatalf("mismatched AUC = %g, want 0.5", got)
	}
}

func TestAUCHandComputed(t *testing.T) {
	// Positives {0.9, 0.4}, negatives {0.6, 0.2}: pairs won = (0.9>0.6),
	// (0.9>0.2), (0.4>0.2) = 3 of 4.
	scores := []float64{0.9, 0.4, 0.6, 0.2}
	labels := []bool{true, true, false, false}
	if got := AUC(scores, labels); math.Abs(got-0.75) > 1e-15 {
		t.Fatalf("AUC = %g, want 0.75", got)
	}
	// A tie across classes counts half: positive {0.5}, negatives
	// {0.5, 0.3} -> (tie = 0.5) + (win = 1) over 2 pairs = 0.75.
	scores = []float64{0.5, 0.5, 0.3}
	labels = []bool{true, false, false}
	if got := AUC(scores, labels); math.Abs(got-0.75) > 1e-15 {
		t.Fatalf("tied AUC = %g, want 0.75", got)
	}
}

func TestAUCOrderInvariant(t *testing.T) {
	scores := []float64{0.9, 0.4, 0.6, 0.2, 0.5, 0.5}
	labels := []bool{true, true, false, false, true, false}
	want := AUC(scores, labels)
	// Reverse both in lockstep; the statistic must not move.
	n := len(scores)
	rs := make([]float64, n)
	rl := make([]bool, n)
	for i := 0; i < n; i++ {
		rs[i], rl[i] = scores[n-1-i], labels[n-1-i]
	}
	if got := AUC(rs, rl); got != want {
		t.Fatalf("reversed AUC = %g, want %g", got, want)
	}
}
