package stat

import (
	"fmt"

	"repro/internal/mathx"
)

// MovingPoint is one point of a windowed series: the window's center
// time (or index midpoint when no times are given) and the window mean.
type MovingPoint struct {
	Center float64
	Mean   float64
	N      int
}

// MovingAverage computes the mean of consecutive count-based windows of
// `window` samples advancing by `step` samples — exactly the smoothing
// of Fig 4's upper plot ("each window ... contains 20 ratings. The step
// size for windows is 10 ratings"). times may be nil, in which case the
// sample index is used as the time axis; otherwise times[i] must be the
// time of values[i] and Center is the mean time inside the window.
func MovingAverage(values, times []float64, window, step int) ([]MovingPoint, error) {
	if window < 1 || step < 1 {
		return nil, fmt.Errorf("stat: moving average window=%d step=%d", window, step)
	}
	if times != nil && len(times) != len(values) {
		return nil, fmt.Errorf("stat: %d values but %d times", len(values), len(times))
	}
	var out []MovingPoint
	for start := 0; start+window <= len(values); start += step {
		seg := values[start : start+window]
		p := MovingPoint{Mean: Mean(seg), N: window}
		if times != nil {
			p.Center = Mean(times[start : start+window])
		} else {
			p.Center = float64(start) + float64(window-1)/2
		}
		out = append(out, p)
	}
	return out, nil
}

// AutoCorrelation returns the biased autocorrelation estimates
// r(0..maxLag) of xs: r(k) = (1/N) Σ x(n) x(n−k). The biased estimator
// guarantees a positive semi-definite sequence, which Levinson-Durbin
// requires. It does not demean; compose with Demean when the zero-mean
// view is wanted.
func AutoCorrelation(xs []float64, maxLag int) ([]float64, error) {
	n := len(xs)
	if n == 0 {
		return nil, ErrEmpty
	}
	if maxLag < 0 || maxLag >= n {
		return nil, fmt.Errorf("stat: maxLag %d for %d samples", maxLag, n)
	}
	r := make([]float64, maxLag+1)
	for lag := 0; lag <= maxLag; lag++ {
		var s float64
		for i := lag; i < n; i++ {
			s += xs[i] * xs[i-lag]
		}
		r[lag] = s / float64(n)
	}
	return r, nil
}

// LjungBox runs the Ljung-Box portmanteau test for whiteness on xs
// using autocorrelations at lags 1..lags. It returns the Q statistic
// and the p-value under the chi-squared(lags) null of white noise. A
// small p-value rejects whiteness — i.e. flags structure of the kind
// collaborative raters inject. The series is demeaned first.
func LjungBox(xs []float64, lags int) (q, pValue float64, err error) {
	n := len(xs)
	if lags < 1 {
		return 0, 0, fmt.Errorf("stat: ljung-box with %d lags", lags)
	}
	if n <= lags+1 {
		return 0, 0, fmt.Errorf("stat: ljung-box needs more than %d samples, have %d", lags+1, n)
	}
	centered := Demean(xs)
	r, err := AutoCorrelation(centered, lags)
	if err != nil {
		return 0, 0, err
	}
	if r[0] <= 1e-18 {
		// (Numerically) constant series: no variance, vacuously "white".
		// The threshold absorbs the float residue Demean leaves behind.
		return 0, 1, nil
	}
	fn := float64(n)
	for k := 1; k <= lags; k++ {
		rho := r[k] / r[0]
		q += rho * rho / (fn - float64(k))
	}
	q *= fn * (fn + 2)
	pValue, err = mathx.ChiSquaredSurvival(q, lags)
	if err != nil {
		return 0, 0, err
	}
	return q, pValue, nil
}
