package stat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestMovingAveragePaperGeometry(t *testing.T) {
	// 50 samples, window 20, step 10 -> windows at 0, 10, 20, 30.
	values := make([]float64, 50)
	for i := range values {
		values[i] = float64(i)
	}
	pts, err := MovingAverage(values, nil, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d windows, want 4", len(pts))
	}
	// First window covers 0..19: mean 9.5, center 9.5.
	if pts[0].Mean != 9.5 || pts[0].Center != 9.5 || pts[0].N != 20 {
		t.Fatalf("first point = %+v", pts[0])
	}
	if pts[3].Mean != 39.5 {
		t.Fatalf("last point = %+v", pts[3])
	}
}

func TestMovingAverageWithTimes(t *testing.T) {
	values := []float64{1, 3, 5, 7}
	times := []float64{10, 20, 30, 40}
	pts, err := MovingAverage(values, times, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d windows", len(pts))
	}
	if pts[0].Center != 15 || pts[0].Mean != 2 {
		t.Fatalf("first = %+v", pts[0])
	}
	if pts[1].Center != 35 || pts[1].Mean != 6 {
		t.Fatalf("second = %+v", pts[1])
	}
}

func TestMovingAverageErrors(t *testing.T) {
	if _, err := MovingAverage([]float64{1}, nil, 0, 1); err == nil {
		t.Fatal("window 0 accepted")
	}
	if _, err := MovingAverage([]float64{1}, nil, 1, 0); err == nil {
		t.Fatal("step 0 accepted")
	}
	if _, err := MovingAverage([]float64{1, 2}, []float64{1}, 1, 1); err == nil {
		t.Fatal("mismatched times accepted")
	}
	// Too few samples -> no windows, no error.
	pts, err := MovingAverage([]float64{1}, nil, 5, 1)
	if err != nil || pts != nil {
		t.Fatalf("short input: %v, %v", pts, err)
	}
}

func TestAutoCorrelation(t *testing.T) {
	xs := []float64{1, -1, 1, -1}
	r, err := AutoCorrelation(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// r(0) = 1, r(1) = -3/4, r(2) = 2/4.
	want := []float64{1, -0.75, 0.5}
	for i := range want {
		if math.Abs(r[i]-want[i]) > 1e-12 {
			t.Fatalf("r = %v, want %v", r, want)
		}
	}
}

func TestAutoCorrelationErrors(t *testing.T) {
	if _, err := AutoCorrelation(nil, 0); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
	if _, err := AutoCorrelation([]float64{1, 2}, 2); err == nil {
		t.Fatal("maxLag >= n accepted")
	}
	if _, err := AutoCorrelation([]float64{1, 2}, -1); err == nil {
		t.Fatal("negative maxLag accepted")
	}
}

func TestLjungBoxWhiteNoise(t *testing.T) {
	// Average p-value on true white noise should be far from zero; count
	// rejections at 1% across many seeds.
	rejections := 0
	const runs = 200
	for seed := int64(0); seed < runs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 200)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		_, p, err := LjungBox(xs, 10)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0.01 {
			rejections++
		}
	}
	// Expect about 1% rejections; allow up to 5%.
	if rejections > runs/20 {
		t.Fatalf("white noise rejected %d/%d times", rejections, runs)
	}
}

func TestLjungBoxDetectsCorrelation(t *testing.T) {
	// Strong AR(1) signal must be rejected essentially always.
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 300)
	prev := 0.0
	for i := range xs {
		prev = 0.9*prev + 0.1*rng.NormFloat64()
		xs[i] = prev
	}
	q, p, err := LjungBox(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Fatalf("AR(1) p-value = %g (Q=%g), want near 0", p, q)
	}
}

func TestLjungBoxConstantSeries(t *testing.T) {
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = 0.7
	}
	q, p, err := LjungBox(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if q != 0 || p != 1 {
		t.Fatalf("constant series: q=%g p=%g", q, p)
	}
}

func TestLjungBoxErrors(t *testing.T) {
	if _, _, err := LjungBox([]float64{1, 2, 3}, 0); err == nil {
		t.Fatal("0 lags accepted")
	}
	if _, _, err := LjungBox([]float64{1, 2, 3}, 5); err == nil {
		t.Fatal("too few samples accepted")
	}
}
