package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a HELP string per the Prometheus text format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {a="x",b="y"} from parallel name/value slices,
// optionally appending an extra pair (used for histogram "le").
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, escapeLabel(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

// writeHistogram renders one histogram (possibly a vec child) in the
// text format: cumulative _bucket series, then _sum and _count.
func writeHistogram(w io.Writer, name string, labelNames, labelValues []string, s HistogramSnapshot) {
	var cum uint64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name,
			labelString(labelNames, labelValues, "le", formatFloat(bound)), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	fmt.Fprintf(w, "%s_bucket%s %d\n", name,
		labelString(labelNames, labelValues, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name,
		labelString(labelNames, labelValues, "", ""), formatFloat(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name,
		labelString(labelNames, labelValues, "", ""), s.Count)
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, e := range r.sortedEntries() {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", e.name, escapeHelp(e.help), e.name, e.kind)
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %d\n", e.name, e.counter.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s %s\n", e.name, formatFloat(e.gauge.Value()))
		case kindGaugeFunc:
			fmt.Fprintf(bw, "%s %s\n", e.name, formatFloat(e.gaugeFn()))
		case kindGaugeVecFunc:
			m := e.vecFn()
			keys := make([]string, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(bw, "%s%s %s\n", e.name,
					labelString([]string{e.vecFnLabel}, []string{k}, "", ""), formatFloat(m[k]))
			}
		case kindHistogram:
			writeHistogram(bw, e.name, nil, nil, e.hist.Snapshot())
		case kindCounterVec:
			for _, ch := range e.counterVec.v.sorted() {
				fmt.Fprintf(bw, "%s%s %d\n", e.name,
					labelString(e.counterVec.v.labels, ch.values, "", ""), ch.m.Value())
			}
		case kindHistogramVec:
			for _, ch := range e.histVec.v.sorted() {
				writeHistogram(bw, e.name, e.histVec.v.labels, ch.values, ch.m.Snapshot())
			}
		}
	}
	return bw.Flush()
}

// histJSON is the JSON dump's histogram shape: totals plus quantile
// estimates, which is what a human curling /debug/vars wants.
type histJSON struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// jsonSafe maps NaN (empty histogram quantiles) to 0 so the dump stays
// valid JSON.
func jsonSafe(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

func histToJSON(h *Histogram) histJSON {
	j := histJSON{
		Count: h.Count(),
		Sum:   jsonSafe(h.Sum()),
		P50:   jsonSafe(h.Quantile(0.50)),
		P90:   jsonSafe(h.Quantile(0.90)),
		P99:   jsonSafe(h.Quantile(0.99)),
	}
	if j.Count > 0 {
		j.Mean = j.Sum / float64(j.Count)
	}
	return j
}

// WriteJSON renders an expvar-style dump: one top-level key per
// metric; vecs become nested objects keyed by comma-joined label
// values.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	doc := make(map[string]any)
	for _, e := range r.sortedEntries() {
		switch e.kind {
		case kindCounter:
			doc[e.name] = e.counter.Value()
		case kindGauge:
			doc[e.name] = jsonSafe(e.gauge.Value())
		case kindGaugeFunc:
			doc[e.name] = jsonSafe(e.gaugeFn())
		case kindGaugeVecFunc:
			m := e.vecFn()
			safe := make(map[string]float64, len(m))
			for k, v := range m {
				safe[k] = jsonSafe(v)
			}
			doc[e.name] = safe
		case kindHistogram:
			doc[e.name] = histToJSON(e.hist)
		case kindCounterVec:
			m := make(map[string]uint64)
			for _, ch := range e.counterVec.v.sorted() {
				m[strings.Join(ch.values, ",")] = ch.m.Value()
			}
			doc[e.name] = m
		case kindHistogramVec:
			m := make(map[string]histJSON)
			for _, ch := range e.histVec.v.sorted() {
				m[strings.Join(ch.values, ",")] = histToJSON(ch.m)
			}
			doc[e.name] = m
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Handler serves the Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler serves the /debug/vars-style JSON dump.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}
