// Package telemetry is the runtime metrics substrate for the serving
// stack: a stdlib-only registry of atomic counters, gauges and
// fixed-bucket latency histograms (with quantile estimates), plus
// labeled metric families and lightweight pipeline spans that time
// named stages.
//
// Two exposition formats are provided (see expo.go): the Prometheus
// text format served by ratingd's /metrics, and an expvar-style JSON
// dump served by /debug/vars.
//
// Everything is safe for concurrent use, and the whole surface is
// nil-tolerant by design: a nil *Registry hands out nil metrics, and
// every method on a nil metric is a no-op. Code paths are therefore
// instrumented unconditionally — when telemetry is disabled the cost
// of an instrumented operation is a single predictable branch, and no
// clock is ever read.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Negative deltas are a programming error; counters only
// go up, so n is unsigned.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add applies a delta (negative allowed) with a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefLatencyBuckets are the default histogram bounds for operation
// latencies in seconds: 1µs to 10s in a 1-2.5-5 decade ladder, wide
// enough to hold both an AR fit (~µs) and an fsync-bound snapshot.
var DefLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets (cumulative "le"
// semantics like Prometheus) and tracks their sum, so rates, means and
// quantile estimates can all be derived from one metric.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; +Inf bucket is implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = overflow
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation inside the bucket holding the target rank. Values in
// the overflow bucket are reported as the largest bound. It returns
// NaN when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum float64
	lower := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n >= rank && n > 0 {
			if i == len(h.bounds) { // overflow bucket: no finite upper edge
				return h.bounds[len(h.bounds)-1]
			}
			upper := h.bounds[i]
			frac := (rank - cum) / n
			return lower + frac*(upper-lower)
		}
		cum += n
		if i < len(h.bounds) {
			lower = h.bounds[i]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSnapshot is a consistent-enough copy of a histogram for
// exposition (buckets are read without a global lock, so a snapshot
// taken during writes may be off by in-flight observations).
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, same order as Counts[:len(Bounds)]
	Counts []uint64  // per-bucket counts; last entry is the overflow bucket
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.Sum(),
		Count:  h.Count(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Span times one operation into a histogram. The zero Span (from a nil
// histogram) is a no-op and never reads the clock.
type Span struct {
	h     *Histogram
	start time.Time
}

// Start begins timing an operation; call End to record it.
func (h *Histogram) Start() Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End records the elapsed time since Start.
func (s Span) End() {
	if s.h != nil {
		s.h.Observe(time.Since(s.start).Seconds())
	}
}

// Pipeline times named stages of a processing pipeline into one
// histogram family labeled by stage.
type Pipeline struct{ stages *HistogramVec }

// NewPipeline registers a stage-labeled histogram family on r (nil r
// gives a no-op pipeline).
func NewPipeline(r *Registry, name, help string) *Pipeline {
	if r == nil {
		return nil
	}
	return &Pipeline{stages: r.HistogramVec(name, help, DefLatencyBuckets, "stage")}
}

// Start begins timing one stage.
func (p *Pipeline) Start(stage string) Span {
	if p == nil {
		return Span{}
	}
	return p.stages.With(stage).Start()
}

// labelKey joins label values into a map key; \xff never appears in
// sane label values, so the join is unambiguous.
func labelKey(values []string) string { return strings.Join(values, "\xff") }

// vecChild pairs a child metric with its label values for exposition.
type vecChild[M any] struct {
	values []string
	m      M
}

// vec is the shared labeled-family machinery: a lazily populated map
// of children keyed by label values, read-locked on the hot path.
type vec[M any] struct {
	mu       sync.RWMutex
	labels   []string
	children map[string]*vecChild[M]
	newChild func() M
}

func newVec[M any](labels []string, newChild func() M) *vec[M] {
	return &vec[M]{
		labels:   labels,
		children: make(map[string]*vecChild[M]),
		newChild: newChild,
	}
}

func (v *vec[M]) with(values ...string) M {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: %d label values for %d labels", len(values), len(v.labels)))
	}
	key := labelKey(values)
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c.m
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c.m
	}
	c = &vecChild[M]{values: append([]string(nil), values...), m: v.newChild()}
	v.children[key] = c
	return c.m
}

// sorted returns the children in deterministic (label-value) order.
func (v *vec[M]) sorted() []*vecChild[M] {
	v.mu.RLock()
	defer v.mu.RUnlock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*vecChild[M], len(keys))
	for i, k := range keys {
		out[i] = v.children[k]
	}
	return out
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ v *vec[*Counter] }

// With returns (creating on first use) the child for the given label
// values, in registration label order.
func (c *CounterVec) With(values ...string) *Counter {
	if c == nil {
		return nil
	}
	return c.v.with(values...)
}

// Total sums every child — handy for summary lines.
func (c *CounterVec) Total() uint64 {
	if c == nil {
		return 0
	}
	var t uint64
	for _, ch := range c.v.sorted() {
		t += ch.m.Value()
	}
	return t
}

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct {
	v      *vec[*Histogram]
	bounds []float64
}

// With returns (creating on first use) the child histogram for the
// given label values.
func (h *HistogramVec) With(values ...string) *Histogram {
	if h == nil {
		return nil
	}
	return h.v.with(values...)
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindGaugeFunc
	kindGaugeVecFunc
	kindHistogram
	kindCounterVec
	kindHistogramVec
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterVec:
		return "counter"
	case kindGauge, kindGaugeFunc, kindGaugeVecFunc:
		return "gauge"
	case kindHistogram, kindHistogramVec:
		return "histogram"
	}
	return "untyped"
}

// entry is one registered metric.
type entry struct {
	name, help string
	kind       metricKind

	counter    *Counter
	gauge      *Gauge
	gaugeFn    func() float64
	hist       *Histogram
	counterVec *CounterVec
	histVec    *HistogramVec

	vecFnLabel string
	vecFn      func() map[string]float64
}

// Registry holds named metrics and renders them (expo.go). The zero
// value is NOT usable — call NewRegistry — but a nil *Registry is: it
// hands out nil metrics whose operations are all no-ops, which is how
// instrumented packages run with telemetry disabled.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// register returns the existing entry for name (asserting its kind) or
// installs the one built by mk. Re-registering a name is idempotent so
// packages can be re-instantiated (tests, multiple servers) against
// one registry; a kind clash is a programming error and panics.
func (r *Registry) register(name, help string, kind metricKind, mk func() *entry) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", name, kind, e.kind))
		}
		return e
	}
	e := mk()
	e.name, e.help, e.kind = name, help, kind
	r.entries[name] = e
	return e
}

// Counter registers (or returns the existing) counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindCounter, func() *entry {
		return &entry{counter: &Counter{}}
	}).counter
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindGauge, func() *entry {
		return &entry{gauge: &Gauge{}}
	}).gauge
}

// GaugeFunc registers a gauge computed by fn at exposition time (for
// values that are cheaper to read than to track, e.g. goroutine
// counts). Re-registering a name keeps the first function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, kindGaugeFunc, func() *entry {
		return &entry{gaugeFn: fn}
	})
}

// GaugeVecFunc registers a labeled gauge family computed by fn at
// exposition time: fn returns label value -> gauge value for the
// single label named label. Used for scrape-time distributions such as
// the trust-record histogram.
func (r *Registry) GaugeVecFunc(name, help, label string, fn func() map[string]float64) {
	if r == nil {
		return
	}
	r.register(name, help, kindGaugeVecFunc, func() *entry {
		return &entry{vecFnLabel: label, vecFn: fn}
	})
}

// Histogram registers (or returns the existing) histogram. nil bounds
// mean DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	return r.register(name, help, kindHistogram, func() *entry {
		return &entry{hist: newHistogram(bounds)}
	}).hist
}

// CounterVec registers (or returns the existing) counter family with
// the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindCounterVec, func() *entry {
		return &entry{counterVec: &CounterVec{v: newVec(labels, func() *Counter { return &Counter{} })}}
	}).counterVec
}

// HistogramVec registers (or returns the existing) histogram family.
// nil bounds mean DefLatencyBuckets.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	return r.register(name, help, kindHistogramVec, func() *entry {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		return &entry{histVec: &HistogramVec{
			v:      newVec(labels, func() *Histogram { return newHistogram(bs) }),
			bounds: bs,
		}}
	}).histVec
}

// sortedEntries returns the registered entries in name order.
func (r *Registry) sortedEntries() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*entry, len(names))
	for i, n := range names {
		out[i] = r.entries[n]
	}
	return out
}
