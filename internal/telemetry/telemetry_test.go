package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "total requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("requests_total", "total requests"); again != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "")
	g := r.Gauge("b", "")
	h := r.Histogram("c", "", nil)
	cv := r.CounterVec("d", "", "l")
	hv := r.HistogramVec("e", "", nil, "l")
	r.GaugeFunc("f", "", func() float64 { return 1 })
	r.GaugeVecFunc("g", "", "l", nil)
	p := NewPipeline(r, "h", "")

	// Every operation on the nil metrics must be a safe no-op.
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	cv.With("x").Inc()
	hv.With("x").Observe(1)
	sp := h.Start()
	sp.End()
	p.Start("stage").End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || cv.Total() != 0 {
		t.Fatal("nil metrics accumulated state")
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("nil histogram quantile should be NaN")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 106.5 {
		t.Fatalf("sum = %g, want 106.5", got)
	}
	s := h.Snapshot()
	want := []uint64{1, 2, 1, 1} // le=1, le=2, le=4, +Inf
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], w, s.Counts)
		}
	}
	// Median rank 2.5 lands in the (1,2] bucket; interpolation stays
	// inside its bounds.
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("p50 = %g, want within (1,2]", q)
	}
	// The 99th percentile rank is in the overflow bucket: clamped to
	// the largest bound.
	if q := h.Quantile(0.99); q != 4 {
		t.Fatalf("p99 = %g, want 4", q)
	}
	if !math.IsNaN(r.Histogram("empty", "", []float64{1}).Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("http_requests_total", "", "route", "code")
	cv.With("/v1/ratings", "200").Add(3)
	cv.With("/v1/ratings", "400").Inc()
	cv.With("/v1/process", "200").Inc()
	if got := cv.Total(); got != 5 {
		t.Fatalf("total = %d, want 5", got)
	}
	if c := cv.With("/v1/ratings", "200"); c.Value() != 3 {
		t.Fatalf("child = %d, want 3", c.Value())
	}

	hv := r.HistogramVec("stage_seconds", "", []float64{1}, "stage")
	hv.With("filter").Observe(0.5)
	hv.With("fit").Observe(2)
	if hv.With("filter").Count() != 1 || hv.With("fit").Count() != 1 {
		t.Fatal("histogram vec children not isolated")
	}
}

func TestRegisterKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind clash")
		}
	}()
	r.Gauge("x", "")
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "counts a\nsecond line").Add(7)
	r.Gauge("b", "a gauge").Set(2.5)
	r.GaugeFunc("c", "computed", func() float64 { return 9 })
	r.GaugeVecFunc("d", "dist", "le", func() map[string]float64 {
		return map[string]float64{"0.5": 3, "1.0": 4}
	})
	r.CounterVec("e_total", "labeled", "route", "code").With(`/v1/x"y\z`, "200").Inc()
	r.Histogram("f_seconds", "hist", []float64{1, 2}).Observe(1.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP a_total counts a\\nsecond line\n# TYPE a_total counter\na_total 7\n",
		"# TYPE b gauge\nb 2.5\n",
		"c 9\n",
		`d{le="0.5"} 3`,
		`d{le="1.0"} 4`,
		`e_total{route="/v1/x\"y\\z",code="200"} 1`,
		`f_seconds_bucket{le="1"} 0`,
		`f_seconds_bucket{le="2"} 1`,
		`f_seconds_bucket{le="+Inf"} 1`,
		"f_seconds_sum 1.5",
		"f_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Text-format sanity: every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a", "").Add(2)
	h := r.Histogram("h", "", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"a": 2`, `"count": 2`, `"p50":`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON dump missing %q in:\n%s", want, out)
		}
	}
}

func TestSpanAndPipeline(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("op_seconds", "", nil)
	sp := h.Start()
	sp.End()
	if h.Count() != 1 {
		t.Fatalf("span did not observe (count=%d)", h.Count())
	}
	p := NewPipeline(r, "pipeline_seconds", "stages")
	p.Start("filter").End()
	p.Start("filter").End()
	p.Start("fit").End()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `pipeline_seconds_count{stage="filter"} 2`) {
		t.Errorf("pipeline stage not exposed:\n%s", sb.String())
	}
}

// TestConcurrentUse hammers every metric type from many goroutines
// while a scraper renders both formats; run under -race this verifies
// the registry's concurrency contract.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	cv := r.CounterVec("cv", "", "l")
	hv := r.HistogramVec("hv", "", nil, "l")
	r.GaugeFunc("gf", "", func() float64 { return float64(c.Value()) })

	const workers, iters = 8, 500
	var wg sync.WaitGroup
	wg.Add(workers + 1)
	labels := []string{"a", "b", "c", "d"}
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%7) * 1e-4)
				cv.With(labels[i%len(labels)]).Inc()
				hv.With(labels[(i+w)%len(labels)]).Observe(1e-3)
			}
		}(w)
	}
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
			}
			if err := r.WriteJSON(&sb); err != nil {
				t.Error(err)
			}
			_ = h.Quantile(0.9)
		}
	}()
	wg.Wait()

	if got := c.Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := cv.Total(); got != workers*iters {
		t.Fatalf("counter vec total = %d, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
	if got := g.Value(); got != workers*iters {
		t.Fatalf("gauge = %g, want %d", got, workers*iters)
	}
}
