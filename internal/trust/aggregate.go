package trust

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoRatings is returned when an aggregator gets an empty batch.
var ErrNoRatings = errors.New("trust: no ratings to aggregate")

// ErrNoTrustedRaters is returned by trust-weighted aggregators when
// every rater is at or below the trust floor.
var ErrNoTrustedRaters = errors.New("trust: no raters above the trust floor")

// Aggregator combines one rating per rater with trust in those raters
// into a single aggregated rating — the {system: object} indirect-trust
// computation of §III.B. ratings and trusts are parallel slices; an
// aggregator that ignores trust accepts a nil trusts slice.
type Aggregator interface {
	// Name identifies the method in reports ("M1".."M4" in tables).
	Name() string
	// Aggregate returns the aggregated rating in [0, 1].
	Aggregate(ratings, trusts []float64) (float64, error)
}

func checkInputs(ratings, trusts []float64, needTrust bool) error {
	if len(ratings) == 0 {
		return ErrNoRatings
	}
	if needTrust && len(trusts) != len(ratings) {
		return fmt.Errorf("trust: %d ratings but %d trust values", len(ratings), len(trusts))
	}
	for _, r := range ratings {
		if r < 0 || r > 1 || math.IsNaN(r) {
			return fmt.Errorf("trust: rating %g outside [0,1]", r)
		}
	}
	for _, t := range trusts {
		if t < 0 || t > 1 || math.IsNaN(t) {
			return fmt.Errorf("trust: trust value %g outside [0,1]", t)
		}
	}
	return nil
}

// SimpleAverage is Method 1: the plain mean, trust-oblivious.
type SimpleAverage struct{}

var _ Aggregator = SimpleAverage{}

// Name implements Aggregator.
func (SimpleAverage) Name() string { return "simple-average" }

// Aggregate implements Aggregator.
func (SimpleAverage) Aggregate(ratings, _ []float64) (float64, error) {
	if err := checkInputs(ratings, nil, false); err != nil {
		return 0, err
	}
	var s float64
	for _, r := range ratings {
		s += r
	}
	return s / float64(len(ratings)), nil
}

// BetaAggregation is Method 2, the beta reputation of Jøsang-Ismail
// [30]: each rating contributes r positive and 1−r negative evidence,
// Rag = (S'+1)/(S'+F'+2).
type BetaAggregation struct{}

var _ Aggregator = BetaAggregation{}

// Name implements Aggregator.
func (BetaAggregation) Name() string { return "beta-aggregation" }

// Aggregate implements Aggregator.
func (BetaAggregation) Aggregate(ratings, _ []float64) (float64, error) {
	if err := checkInputs(ratings, nil, false); err != nil {
		return 0, err
	}
	var s, f float64
	for _, r := range ratings {
		s += r
		f += 1 - r
	}
	return (s + 1) / (s + f + 2), nil
}

// ModifiedWeightedAverage is Method 3, the paper's pick: raters at or
// below the Floor (neutral trust 0.5) are ignored entirely, and the
// rest are weighted by how far their trust exceeds the floor:
//
//	Rag = Σ max(T_i − Floor, 0)·r_i / Σ max(T_i − Floor, 0)
type ModifiedWeightedAverage struct {
	// Floor is the neutral-trust cutoff; zero means 0.5.
	Floor float64
}

var _ Aggregator = ModifiedWeightedAverage{}

// Name implements Aggregator.
func (ModifiedWeightedAverage) Name() string { return "modified-weighted-average" }

// Aggregate implements Aggregator.
func (m ModifiedWeightedAverage) Aggregate(ratings, trusts []float64) (float64, error) {
	if err := checkInputs(ratings, trusts, true); err != nil {
		return 0, err
	}
	floor := m.Floor
	if floor == 0 {
		floor = 0.5
	}
	var num, den float64
	for i, r := range ratings {
		w := trusts[i] - floor
		if w <= 0 {
			continue
		}
		num += w * r
		den += w
	}
	if den == 0 {
		return 0, ErrNoTrustedRaters
	}
	return num / den, nil
}

// TrustWeightedBeta is Method 4, our rendering of the beta-function
// trust model of Sun et al. [8] (INFOCOM'06, eqs (14)(22)(23) — not
// reprinted in the paper; see DESIGN.md): each rating's beta evidence
// is discounted by the recommender's absolute trust before pooling,
//
//	Rag = (Σ T_i·r_i + 1) / (Σ T_i + 2)
//
// Because the discount uses absolute trust (0.6 is still a substantial
// weight), colluders with mediocre trust keep real influence — which is
// why the paper finds this model, excellent for ad-hoc routing, to be
// the worst of the four for rating aggregation.
type TrustWeightedBeta struct{}

var _ Aggregator = TrustWeightedBeta{}

// Name implements Aggregator.
func (TrustWeightedBeta) Name() string { return "trust-weighted-beta" }

// Aggregate implements Aggregator.
func (TrustWeightedBeta) Aggregate(ratings, trusts []float64) (float64, error) {
	if err := checkInputs(ratings, trusts, true); err != nil {
		return 0, err
	}
	var s, total float64
	for i, r := range ratings {
		s += trusts[i] * r
		total += trusts[i]
	}
	return (s + 1) / (total + 2), nil
}

// PlainWeightedAverage weights ratings by absolute trust with no floor:
// Rag = Σ T_i·r_i / Σ T_i. It is not one of the paper's four methods
// but is the obvious strawman the modified weighted average improves
// on, used by the trust-floor ablation bench.
type PlainWeightedAverage struct{}

var _ Aggregator = PlainWeightedAverage{}

// Name implements Aggregator.
func (PlainWeightedAverage) Name() string { return "plain-weighted-average" }

// Aggregate implements Aggregator.
func (PlainWeightedAverage) Aggregate(ratings, trusts []float64) (float64, error) {
	if err := checkInputs(ratings, trusts, true); err != nil {
		return 0, err
	}
	var num, den float64
	for i, r := range ratings {
		num += trusts[i] * r
		den += trusts[i]
	}
	if den == 0 {
		return 0, ErrNoTrustedRaters
	}
	return num / den, nil
}

// Methods returns the paper's four aggregators in table order
// (M1..M4).
func Methods() []Aggregator {
	return []Aggregator{
		SimpleAverage{},
		BetaAggregation{},
		ModifiedWeightedAverage{},
		TrustWeightedBeta{},
	}
}
