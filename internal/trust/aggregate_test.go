package trust

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

func TestSimpleAverage(t *testing.T) {
	got, err := SimpleAverage{}.Aggregate([]float64{0.2, 0.4, 0.6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("M1 = %g, want 0.4", got)
	}
}

func TestBetaAggregation(t *testing.T) {
	// Single rating 1.0: S'=1, F'=0 -> (1+1)/(1+0+2) = 2/3.
	got, err := BetaAggregation{}.Aggregate([]float64{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("M2 = %g, want 2/3", got)
	}
	// Many ratings at 0.8 converge toward 0.8.
	many := make([]float64, 200)
	for i := range many {
		many[i] = 0.8
	}
	got, err = BetaAggregation{}.Aggregate(many, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.8) > 0.01 {
		t.Fatalf("M2 over many = %g, want about 0.8", got)
	}
}

func TestModifiedWeightedAverage(t *testing.T) {
	ratings := []float64{0.8, 0.4}
	trusts := []float64{0.95, 0.6}
	// Weights: 0.45, 0.1 -> (0.45*0.8 + 0.1*0.4)/0.55 = 0.7273.
	got, err := ModifiedWeightedAverage{}.Aggregate(ratings, trusts)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.45*0.8 + 0.1*0.4) / 0.55
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("M3 = %g, want %g", got, want)
	}
}

func TestModifiedWeightedAverageIgnoresDistrusted(t *testing.T) {
	// Trust 0.5 and below contribute nothing.
	got, err := ModifiedWeightedAverage{}.Aggregate(
		[]float64{0.9, 0.1, 0.1}, []float64{0.8, 0.5, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("M3 = %g, want 0.9 (distrusted ignored)", got)
	}
}

func TestModifiedWeightedAverageNoTrusted(t *testing.T) {
	_, err := ModifiedWeightedAverage{}.Aggregate([]float64{0.9}, []float64{0.5})
	if !errors.Is(err, ErrNoTrustedRaters) {
		t.Fatalf("err = %v", err)
	}
}

func TestModifiedWeightedAverageCustomFloor(t *testing.T) {
	got, err := ModifiedWeightedAverage{Floor: 0.7}.Aggregate(
		[]float64{0.9, 0.1}, []float64{0.8, 0.65})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.9 {
		t.Fatalf("floored M3 = %g, want 0.9", got)
	}
}

func TestTrustWeightedBeta(t *testing.T) {
	// S' = 0.95*0.8 + 0.6*0.4 = 1.0; total T = 1.55 -> (1+1)/(1.55+2).
	got, err := TrustWeightedBeta{}.Aggregate([]float64{0.8, 0.4}, []float64{0.95, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 / 3.55
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("M4 = %g, want %g", got, want)
	}
}

func TestPlainWeightedAverage(t *testing.T) {
	got, err := PlainWeightedAverage{}.Aggregate([]float64{1, 0}, []float64{0.75, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("plain weighted = %g, want 0.75", got)
	}
	if _, err := (PlainWeightedAverage{}).Aggregate([]float64{1}, []float64{0}); !errors.Is(err, ErrNoTrustedRaters) {
		t.Fatalf("zero-trust err = %v", err)
	}
}

func TestAggregatorInputValidation(t *testing.T) {
	for _, agg := range Methods() {
		if _, err := agg.Aggregate(nil, nil); !errors.Is(err, ErrNoRatings) {
			t.Errorf("%s: empty err = %v", agg.Name(), err)
		}
		if _, err := agg.Aggregate([]float64{1.2}, []float64{0.9}); err == nil {
			t.Errorf("%s: rating 1.2 accepted", agg.Name())
		}
	}
	// Trust-requiring methods must reject length mismatch and bad trust.
	for _, agg := range []Aggregator{ModifiedWeightedAverage{}, TrustWeightedBeta{}, PlainWeightedAverage{}} {
		if _, err := agg.Aggregate([]float64{0.5}, nil); err == nil {
			t.Errorf("%s: missing trust accepted", agg.Name())
		}
		if _, err := agg.Aggregate([]float64{0.5}, []float64{1.5}); err == nil {
			t.Errorf("%s: trust 1.5 accepted", agg.Name())
		}
	}
}

func TestMethodsOrderAndNames(t *testing.T) {
	ms := Methods()
	if len(ms) != 4 {
		t.Fatalf("%d methods", len(ms))
	}
	wantNames := []string{
		"simple-average", "beta-aggregation",
		"modified-weighted-average", "trust-weighted-beta",
	}
	for i, m := range ms {
		if m.Name() != wantNames[i] {
			t.Fatalf("method %d = %s, want %s", i, m.Name(), wantNames[i])
		}
	}
}

// TestCaseStudyShape reproduces the structure of the §III.B.2 table:
// 10 honest raters (ratings ~N(0.8, σ 0.05), trust ~N(0.95, σ 0.05))
// and 10 colluders (ratings ~N(0.4, σ 0.02), trust ~N(0.6, σ 0.1)); M3
// must be the clear winner (closest to 0.8) and every other method must
// be pulled well below it. The case study's tight spreads behave as
// standard deviations (σ = 0.22 around a trust of 0.95 would be
// meaningless); see DESIGN.md on variance semantics.
func TestCaseStudyShape(t *testing.T) {
	rng := randx.New(99)
	sum := map[string]float64{}
	const runs = 300
	for run := 0; run < runs; run++ {
		local := rng.Split()
		var ratings, trusts []float64
		for i := 0; i < 10; i++ {
			ratings = append(ratings, clamp01(local.Normal(0.8, 0.05)))
			trusts = append(trusts, clamp01(local.Normal(0.95, 0.05)))
		}
		for i := 0; i < 10; i++ {
			ratings = append(ratings, clamp01(local.Normal(0.4, 0.02)))
			trusts = append(trusts, clamp01(local.Normal(0.6, 0.1)))
		}
		for _, agg := range Methods() {
			got, err := agg.Aggregate(ratings, trusts)
			if err != nil {
				t.Fatal(err)
			}
			sum[agg.Name()] += got
		}
	}
	m1 := sum["simple-average"] / runs
	m2 := sum["beta-aggregation"] / runs
	m3 := sum["modified-weighted-average"] / runs
	m4 := sum["trust-weighted-beta"] / runs
	if m3 <= m1 || m3 <= m2 || m3 <= m4 {
		t.Fatalf("M3 %.4f not the winner (M1 %.4f M2 %.4f M4 %.4f)", m3, m1, m2, m4)
	}
	if m3 < 0.70 || m3 > 0.80 {
		t.Fatalf("M3 = %.4f, want near the paper's 0.7445", m3)
	}
	for name, v := range map[string]float64{"M1": m1, "M2": m2, "M4": m4} {
		avg := v
		if avg < 0.55 || avg > 0.68 {
			t.Fatalf("%s = %.4f, want in the paper's 0.59-0.64 band", name, avg)
		}
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Property: every aggregator returns a value inside the convex hull of
// its input ratings (expanded by the beta prior toward 0.5 for the
// beta-based ones) and is deterministic.
func TestAggregatorsBoundedProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		n := 1 + rng.Intn(30)
		ratings := make([]float64, n)
		trusts := make([]float64, n)
		for i := range ratings {
			ratings[i] = rng.Float64()
			trusts[i] = 0.51 + 0.49*rng.Float64() // keep everyone above floor
		}
		for _, agg := range Methods() {
			v1, err := agg.Aggregate(ratings, trusts)
			if err != nil {
				return false
			}
			v2, err := agg.Aggregate(ratings, trusts)
			if err != nil || v1 != v2 {
				return false
			}
			if v1 < 0 || v1 > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: M3 with all-equal trust reduces to the simple average of
// the ratings.
func TestM3EqualTrustReducesToMeanProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		n := 1 + rng.Intn(20)
		ratings := make([]float64, n)
		trusts := make([]float64, n)
		for i := range ratings {
			ratings[i] = rng.Float64()
			trusts[i] = 0.9
		}
		m3, err := ModifiedWeightedAverage{}.Aggregate(ratings, trusts)
		if err != nil {
			return false
		}
		m1, err := SimpleAverage{}.Aggregate(ratings, nil)
		if err != nil {
			return false
		}
		return math.Abs(m3-m1) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
