package trust

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rating"
)

// Opinion is a subjective-logic opinion (Jøsang): belief, disbelief and
// uncertainty summing to one, plus a base rate used when projecting to
// a probability. The beta reputation system of [30] — the paper's
// Method 2 and the backbone of Procedure 2 — is exactly the evidence
// mapping of this algebra: S positive and F negative observations give
//
//	b = S/(S+F+2),  d = F/(S+F+2),  u = 2/(S+F+2)
//
// so the beta trust value (S+1)/(S+F+2) is the opinion's expectation at
// base rate 1/2. The discount and consensus operators below are the
// formal versions of "weigh a recommendation by trust in the
// recommender" and "pool independent evidence" that the trust manager
// uses informally.
type Opinion struct {
	B, D, U float64
	// A is the base rate in [0, 1] (prior probability mass assigned to
	// the uncertain part when projecting).
	A float64
}

// ErrInvalidOpinion is returned for malformed opinions.
var ErrInvalidOpinion = errors.New("trust: invalid opinion")

// Validate reports whether the opinion is well-formed.
func (o Opinion) Validate() error {
	for _, v := range []float64{o.B, o.D, o.U, o.A} {
		if math.IsNaN(v) || v < -1e-12 || v > 1+1e-12 {
			return fmt.Errorf("component %g out of range: %w", v, ErrInvalidOpinion)
		}
	}
	if s := o.B + o.D + o.U; math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("b+d+u = %g: %w", s, ErrInvalidOpinion)
	}
	return nil
}

// Expectation projects the opinion to a probability: b + a·u.
func (o Opinion) Expectation() float64 { return o.B + o.A*o.U }

// OpinionFromEvidence maps S positive and F negative observations to an
// opinion with base rate 1/2. Negative evidence is rejected.
func OpinionFromEvidence(s, f float64) (Opinion, error) {
	if s < 0 || f < 0 || math.IsNaN(s) || math.IsNaN(f) {
		return Opinion{}, fmt.Errorf("evidence S=%g F=%g: %w", s, f, ErrInvalidOpinion)
	}
	total := s + f + 2
	return Opinion{B: s / total, D: f / total, U: 2 / total, A: 0.5}, nil
}

// OpinionFromRecord maps a trust record to an opinion; the record's
// beta trust value equals the opinion's expectation.
func OpinionFromRecord(r Record) (Opinion, error) {
	return OpinionFromEvidence(r.S, r.F)
}

// Evidence inverts OpinionFromEvidence: S = 2b/u, F = 2d/u. A dogmatic
// opinion (u = 0) has unbounded evidence and is rejected.
func (o Opinion) Evidence() (s, f float64, err error) {
	if err := o.Validate(); err != nil {
		return 0, 0, err
	}
	if o.U <= 0 {
		return 0, 0, fmt.Errorf("dogmatic opinion: %w", ErrInvalidOpinion)
	}
	return 2 * o.B / o.U, 2 * o.D / o.U, nil
}

// OpinionFromRating maps a single rating r in [0, 1] to the opinion of
// one observation with r positive and 1−r negative mass — how Method 2
// treats each rating as beta evidence.
func OpinionFromRating(r float64) (Opinion, error) {
	if r < 0 || r > 1 || math.IsNaN(r) {
		return Opinion{}, fmt.Errorf("rating %g: %w", r, ErrInvalidOpinion)
	}
	return OpinionFromEvidence(r, 1-r)
}

// Discount is Jøsang's discounting operator ⊗: the caller's opinion
// about the recommender (o) discounts the recommender's opinion about
// the subject (x):
//
//	b = o.B·x.B,  d = o.B·x.D,  u = o.D + o.U + o.B·x.U
//
// A distrusted or uncertain recommender pushes the result toward full
// uncertainty rather than toward disbelief.
func Discount(o, x Opinion) (Opinion, error) {
	if err := o.Validate(); err != nil {
		return Opinion{}, fmt.Errorf("recommender: %w", err)
	}
	if err := x.Validate(); err != nil {
		return Opinion{}, fmt.Errorf("subject: %w", err)
	}
	return Opinion{
		B: o.B * x.B,
		D: o.B * x.D,
		U: o.D + o.U + o.B*x.U,
		A: x.A,
	}, nil
}

// Consensus is Jøsang's consensus operator ⊕, pooling two independent
// opinions about the same subject:
//
//	k = u₁ + u₂ − u₁u₂
//	b = (b₁u₂ + b₂u₁)/k,  d = (d₁u₂ + d₂u₁)/k,  u = u₁u₂/k
//
// Two dogmatic opinions (k = 0) average their beliefs.
func Consensus(a, b Opinion) (Opinion, error) {
	if err := a.Validate(); err != nil {
		return Opinion{}, err
	}
	if err := b.Validate(); err != nil {
		return Opinion{}, err
	}
	k := a.U + b.U - a.U*b.U
	if k <= 1e-15 {
		// Dogmatic limit: average the point masses.
		return Opinion{
			B: (a.B + b.B) / 2,
			D: (a.D + b.D) / 2,
			U: 0,
			A: a.A,
		}, nil
	}
	return Opinion{
		B: (a.B*b.U + b.B*a.U) / k,
		D: (a.D*b.U + b.D*a.U) / k,
		U: a.U * b.U / k,
		A: a.A,
	}, nil
}

// IndirectTrustOpinion computes indirect trust in `about` with the full
// opinion algebra instead of Manager.IndirectTrust's weighted average:
// each recommendation becomes a one-observation opinion, discounted by
// the recommender's record-derived opinion, and the discounted opinions
// are consensus-pooled. The result is the pooled opinion (callers read
// .Expectation() for a scalar). Recommendations about other subjects
// are ignored; ErrNoRecommendations is returned when none apply.
func (m *Manager) IndirectTrustOpinion(about rating.RaterID, recs []Recommendation) (Opinion, error) {
	var pooled Opinion
	havePooled := false
	for _, rec := range recs {
		if rec.About != about {
			continue
		}
		x, err := OpinionFromRating(rec.Value)
		if err != nil {
			return Opinion{}, err
		}
		var recommender Opinion
		if record, ok := m.Record(rec.From); ok {
			recommender, err = OpinionFromRecord(record)
		} else {
			recommender, err = OpinionFromEvidence(m.cfg.InitialS, m.cfg.InitialF)
		}
		if err != nil {
			return Opinion{}, err
		}
		discounted, err := Discount(recommender, x)
		if err != nil {
			return Opinion{}, err
		}
		if !havePooled {
			pooled = discounted
			havePooled = true
			continue
		}
		pooled, err = Consensus(pooled, discounted)
		if err != nil {
			return Opinion{}, err
		}
	}
	if !havePooled {
		return Opinion{}, ErrNoRecommendations
	}
	return pooled, nil
}

// SubjectiveLogicAggregation is an extension aggregator (not one of the
// paper's four): each rating becomes a one-observation opinion,
// discounted by an opinion derived from the system's trust in the
// rater, and all discounted opinions are consensus-pooled. The
// aggregate is the pooled opinion's expectation. It behaves like a
// principled version of Method 4 — and shares its weakness: discounting
// shrinks influence but never excludes a mediocre-trust clique the way
// Method 3's hard floor does (see the trust-floor ablation).
type SubjectiveLogicAggregation struct {
	// History is the pseudo-evidence count backing each trust value
	// when converting it to a recommender opinion; 0 means 10.
	History float64
}

var _ Aggregator = SubjectiveLogicAggregation{}

// Name implements Aggregator.
func (SubjectiveLogicAggregation) Name() string { return "subjective-logic" }

// Aggregate implements Aggregator.
func (s SubjectiveLogicAggregation) Aggregate(ratings, trusts []float64) (float64, error) {
	if err := checkInputs(ratings, trusts, true); err != nil {
		return 0, err
	}
	history := s.History
	if history <= 0 {
		history = 10
	}
	var pooled Opinion
	havePooled := false
	for i, r := range ratings {
		x, err := OpinionFromRating(r)
		if err != nil {
			return 0, err
		}
		// Trust t backed by `history` observations: S = t·h, F = (1−t)·h.
		rec, err := OpinionFromEvidence(trusts[i]*history, (1-trusts[i])*history)
		if err != nil {
			return 0, err
		}
		discounted, err := Discount(rec, x)
		if err != nil {
			return 0, err
		}
		if !havePooled {
			pooled = discounted
			havePooled = true
			continue
		}
		pooled, err = Consensus(pooled, discounted)
		if err != nil {
			return 0, err
		}
	}
	return pooled.Expectation(), nil
}
