package trust

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

func TestOpinionFromEvidence(t *testing.T) {
	o, err := OpinionFromEvidence(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(o.B-0.8) > 1e-12 || o.D != 0 || math.Abs(o.U-0.2) > 1e-12 {
		t.Fatalf("opinion = %+v", o)
	}
	// Expectation equals the beta trust value.
	if math.Abs(o.Expectation()-(Record{S: 8}).Trust()) > 1e-12 {
		t.Fatal("expectation != beta trust")
	}
	if _, err := OpinionFromEvidence(-1, 0); err == nil {
		t.Fatal("negative evidence accepted")
	}
}

func TestOpinionFromRecord(t *testing.T) {
	rec := Record{S: 3, F: 5}
	o, err := OpinionFromRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(o.Expectation()-rec.Trust()) > 1e-12 {
		t.Fatalf("expectation %g != trust %g", o.Expectation(), rec.Trust())
	}
}

func TestOpinionEvidenceRoundTrip(t *testing.T) {
	o, _ := OpinionFromEvidence(7, 3)
	s, f, err := o.Evidence()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-7) > 1e-9 || math.Abs(f-3) > 1e-9 {
		t.Fatalf("evidence = %g, %g", s, f)
	}
	dogmatic := Opinion{B: 1, A: 0.5}
	if _, _, err := dogmatic.Evidence(); err == nil {
		t.Fatal("dogmatic opinion accepted")
	}
}

func TestOpinionValidate(t *testing.T) {
	bad := []Opinion{
		{B: 0.5, D: 0.5, U: 0.5, A: 0.5}, // sums to 1.5
		{B: -0.1, D: 0.6, U: 0.5, A: 0.5},
		{B: math.NaN(), D: 0.5, U: 0.5, A: 0.5},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad opinion %d accepted: %+v", i, o)
		}
	}
}

func TestOpinionFromRating(t *testing.T) {
	o, err := OpinionFromRating(0.8)
	if err != nil {
		t.Fatal(err)
	}
	// One observation: u = 2/3.
	if math.Abs(o.U-2.0/3) > 1e-12 {
		t.Fatalf("u = %g", o.U)
	}
	if _, err := OpinionFromRating(1.5); err == nil {
		t.Fatal("rating 1.5 accepted")
	}
}

func TestDiscountTrustedRecommender(t *testing.T) {
	full := Opinion{B: 1, A: 0.5} // dogmatic trust in the recommender
	x, _ := OpinionFromEvidence(6, 2)
	got, err := Discount(full, x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.B-x.B) > 1e-12 || math.Abs(got.U-x.U) > 1e-12 {
		t.Fatalf("full trust must pass the opinion through: %+v", got)
	}
}

func TestDiscountDistrustedRecommenderUncertain(t *testing.T) {
	distrust := Opinion{D: 1, A: 0.5}
	x, _ := OpinionFromEvidence(10, 0)
	got, err := Discount(distrust, x)
	if err != nil {
		t.Fatal(err)
	}
	if got.U != 1 || got.B != 0 || got.D != 0 {
		t.Fatalf("distrusted recommendation must become vacuous: %+v", got)
	}
}

func TestConsensusPoolsEvidence(t *testing.T) {
	// Consensus of evidence opinions equals the opinion of pooled
	// evidence — the defining property of the beta mapping.
	a, _ := OpinionFromEvidence(4, 1)
	b, _ := OpinionFromEvidence(2, 3)
	got, err := Consensus(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := OpinionFromEvidence(6, 4)
	if math.Abs(got.B-want.B) > 1e-9 || math.Abs(got.U-want.U) > 1e-9 {
		t.Fatalf("consensus = %+v, want %+v", got, want)
	}
}

func TestConsensusDogmaticLimit(t *testing.T) {
	a := Opinion{B: 1, A: 0.5}
	b := Opinion{D: 1, A: 0.5}
	got, err := Consensus(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.B != 0.5 || got.D != 0.5 {
		t.Fatalf("dogmatic consensus = %+v", got)
	}
}

// Property: both operators preserve well-formedness and consensus is
// commutative.
func TestOpinionOperatorsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		mk := func() Opinion {
			o, err := OpinionFromEvidence(rng.Uniform(0, 30), rng.Uniform(0, 30))
			if err != nil {
				panic(err)
			}
			return o
		}
		a, b := mk(), mk()
		d, err := Discount(a, b)
		if err != nil || d.Validate() != nil {
			return false
		}
		c1, err1 := Consensus(a, b)
		c2, err2 := Consensus(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		if c1.Validate() != nil {
			return false
		}
		return math.Abs(c1.B-c2.B) < 1e-9 && math.Abs(c1.U-c2.U) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSubjectiveLogicAggregation(t *testing.T) {
	agg := SubjectiveLogicAggregation{}
	if agg.Name() != "subjective-logic" {
		t.Fatal("name")
	}
	// Equal trust: expectation near the mean, shrunk toward 0.5 by
	// residual uncertainty.
	v, err := agg.Aggregate([]float64{0.9, 0.9, 0.9, 0.9}, []float64{0.9, 0.9, 0.9, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.6 || v > 0.9 {
		t.Fatalf("aggregate = %g", v)
	}
	// Trusted raters must dominate distrusted ones.
	hi, err := agg.Aggregate([]float64{0.9, 0.1}, []float64{0.95, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := agg.Aggregate([]float64{0.9, 0.1}, []float64{0.05, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if hi <= lo {
		t.Fatalf("trust weighting inverted: %g vs %g", hi, lo)
	}
	if _, err := agg.Aggregate(nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := agg.Aggregate([]float64{0.5}, nil); err == nil {
		t.Fatal("missing trusts accepted")
	}
}

// TestSubjectiveLogicSharesM4Weakness pins the documented behavior: on
// the tab2 case study the subjective-logic aggregator lands near the
// M4/M1 cluster, well below Method 3.
func TestSubjectiveLogicSharesM4Weakness(t *testing.T) {
	rng := randx.New(42)
	var slSum, m3Sum float64
	const runs = 100
	for i := 0; i < runs; i++ {
		local := rng.Split()
		var ratings, trusts []float64
		for j := 0; j < 10; j++ {
			ratings = append(ratings, clamp01(local.Normal(0.8, 0.05)))
			trusts = append(trusts, clamp01(local.Normal(0.95, 0.05)))
		}
		for j := 0; j < 10; j++ {
			ratings = append(ratings, clamp01(local.Normal(0.4, 0.02)))
			trusts = append(trusts, clamp01(local.Normal(0.6, 0.1)))
		}
		sl, err := SubjectiveLogicAggregation{}.Aggregate(ratings, trusts)
		if err != nil {
			t.Fatal(err)
		}
		m3, err := ModifiedWeightedAverage{}.Aggregate(ratings, trusts)
		if err != nil {
			t.Fatal(err)
		}
		slSum += sl
		m3Sum += m3
	}
	if slSum/runs >= m3Sum/runs {
		t.Fatalf("subjective logic %.4f unexpectedly beats M3 %.4f under collusion",
			slSum/runs, m3Sum/runs)
	}
}

func TestIndirectTrustOpinion(t *testing.T) {
	m, _ := NewManager(ManagerConfig{})
	_ = m.Update(1, Observation{N: 20}, 1)               // trusted recommender
	_ = m.Update(2, Observation{N: 20, Filtered: 18}, 1) // distrusted recommender
	recs := []Recommendation{
		{From: 1, About: 9, Value: 0.9},
		{From: 2, About: 9, Value: 0.1},
		{From: 3, About: 9, Value: 0.5}, // unknown recommender: prior opinion
		{From: 1, About: 8, Value: 0.2}, // other subject: ignored
	}
	op, err := m.IndirectTrustOpinion(9, recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Validate(); err != nil {
		t.Fatal(err)
	}
	// The trusted 0.9 recommendation dominates: expectation above 0.5.
	if op.Expectation() <= 0.5 {
		t.Fatalf("expectation = %g", op.Expectation())
	}
	// Distrusted recommendations add mostly uncertainty, not disbelief.
	if op.D > op.B {
		t.Fatalf("disbelief %g above belief %g", op.D, op.B)
	}
}

func TestIndirectTrustOpinionNoRecommendations(t *testing.T) {
	m, _ := NewManager(ManagerConfig{})
	if _, err := m.IndirectTrustOpinion(9, nil); !errors.Is(err, ErrNoRecommendations) {
		t.Fatalf("err = %v", err)
	}
	if _, err := m.IndirectTrustOpinion(9, []Recommendation{{From: 1, About: 9, Value: 2}}); err == nil {
		t.Fatal("invalid recommendation accepted")
	}
}
