package trust

import (
	"math"
	"repro/internal/rating"
	"testing"
)

func TestRecordsReturnsCopies(t *testing.T) {
	m, _ := NewManager(ManagerConfig{})
	_ = m.Update(1, Observation{N: 5}, 1)
	recs := m.Records()
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	rec := recs[1]
	rec.S = 999
	recs[1] = rec
	if got, _ := m.Record(1); got.S == 999 {
		t.Fatal("Records exposed internal state")
	}
}

func TestRestoreRoundTrip(t *testing.T) {
	src, _ := NewManager(ManagerConfig{})
	_ = src.Update(1, Observation{N: 5}, 1)
	_ = src.Update(2, Observation{N: 5, Filtered: 4}, 2)

	dst, _ := NewManager(ManagerConfig{})
	if err := dst.Restore(src.Records()); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 2 {
		t.Fatalf("Len = %d", dst.Len())
	}
	for _, id := range []int{1, 2} {
		if dst.Trust(rating.RaterID(id)) != src.Trust(rating.RaterID(id)) {
			t.Fatalf("rater %d trust diverged", id)
		}
	}
}

func TestRestoreRejectsInvalid(t *testing.T) {
	m, _ := NewManager(ManagerConfig{})
	bad := m.Records()
	bad[7] = Record{S: -1}
	if err := m.Restore(bad); err == nil {
		t.Fatal("negative S accepted")
	}
	bad[7] = Record{F: math.NaN()}
	if err := m.Restore(bad); err == nil {
		t.Fatal("NaN F accepted")
	}
}

func TestRestoreReplacesState(t *testing.T) {
	m, _ := NewManager(ManagerConfig{})
	_ = m.Update(9, Observation{N: 20}, 1)
	if err := m.Restore(nil); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after empty restore", m.Len())
	}
	if m.Trust(9) != 0.5 {
		t.Fatal("old record survived restore")
	}
}
