package trust

import (
	"math"
	"testing"
)

func TestPriorConfigValidation(t *testing.T) {
	if err := (ManagerConfig{InitialS: 1, InitialF: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ManagerConfig{
		{InitialS: -1},
		{InitialF: -1},
		{InitialF: math.NaN()},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSkepticalPriorStartsBelowNeutral(t *testing.T) {
	m, err := NewManager(ManagerConfig{InitialF: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Unknown raters report the prior, not 0.5.
	want := 1.0 / 4 // (0+1)/(0+2+2)
	if got := m.Trust(1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("prior trust = %g, want %g", got, want)
	}
	// First real update builds on the prior.
	if err := m.Update(1, Observation{N: 6}, 1); err != nil {
		t.Fatal(err)
	}
	want = (6.0 + 1) / (6 + 2 + 2)
	if got := m.Trust(1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("post-update trust = %g, want %g", got, want)
	}
}

func TestOptimisticPrior(t *testing.T) {
	m, err := NewManager(ManagerConfig{InitialS: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Trust(9); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("prior trust = %g, want 0.8", got)
	}
}

// TestSkepticalPriorBluntsSybil: a sybil identity with one suspicious
// rating never rises above the aggregation floor when newcomers start
// skeptical, while an honest rater still climbs past it with modest
// history.
func TestSkepticalPriorBluntsSybil(t *testing.T) {
	m, err := NewManager(ManagerConfig{InitialF: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Sybil: one rating, in a suspicious window.
	if err := m.Update(1, Observation{N: 1, Suspicious: 1, SuspicionMass: 1}, 1); err != nil {
		t.Fatal(err)
	}
	if m.Trust(1) >= 0.5 {
		t.Fatalf("sybil trust = %g", m.Trust(1))
	}
	// Honest newcomer: clears the floor after two clean months.
	for month := 1; month <= 2; month++ {
		if err := m.Update(2, Observation{N: 5}, float64(month*30)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Trust(2) <= 0.5 {
		t.Fatalf("honest newcomer trust = %g after 2 months", m.Trust(2))
	}
}
