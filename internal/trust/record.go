// Package trust implements the paper's Trust Manager (§III.B): beta-
// function trust records per rater updated by Procedure 2, record
// maintenance with forgetting, malicious-rater detection, the entropy
// trust mapping of [8], indirect trust from recommendations, and the
// four rating-aggregation methods compared in §III.B.2.
package trust

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/rating"
	"repro/internal/stat"
)

// Record is one rater's trust state: S successful (honest-looking) and
// F failed (dishonest-looking) observation mass. Trust is the beta-
// function estimate (S+1)/(S+F+2) of [30]; a fresh record therefore
// starts at the neutral 0.5.
type Record struct {
	S, F float64
	// LastUpdate is the time (days) the record was last maintained;
	// used by the forgetting scheme.
	LastUpdate float64
}

// Trust returns the beta-function trust value (S+1)/(S+F+2) in (0, 1).
func (r Record) Trust() float64 {
	return (r.S + 1) / (r.S + r.F + 2)
}

// EntropyTrust maps a probability p = Trust() to the entropy-based
// trust value of [8]: 1−H(p) for p ≥ 0.5 and H(p)−1 otherwise, giving a
// value in [−1, 1] where 0 is total uncertainty and negative values
// mean distrust.
func EntropyTrust(p float64) float64 {
	if p >= 0.5 {
		return 1 - stat.BinaryEntropy(p)
	}
	return stat.BinaryEntropy(p) - 1
}

// Observation is one maintenance interval's evidence about a rater, in
// Procedure 2's notation.
type Observation struct {
	// N is n_i: ratings provided in the interval.
	N int
	// Filtered is f_i: ratings removed by the rating filter.
	Filtered int
	// Suspicious is s_i: ratings lying in at least one suspicious
	// window.
	Suspicious int
	// SuspicionMass is C_i from Procedure 1.
	SuspicionMass float64
}

// Validate reports malformed observations.
func (o Observation) Validate() error {
	if o.N < 0 || o.Filtered < 0 || o.Suspicious < 0 {
		return fmt.Errorf("trust: negative observation %+v", o)
	}
	if o.Filtered+o.Suspicious > o.N {
		return fmt.Errorf("trust: observation %+v has f+s > n", o)
	}
	if o.SuspicionMass < 0 || math.IsNaN(o.SuspicionMass) {
		return fmt.Errorf("trust: suspicion mass %g", o.SuspicionMass)
	}
	return nil
}

// ManagerConfig parameterizes the trust manager.
type ManagerConfig struct {
	// B is Procedure 2's b in (0, 1]: the relative badness of a rating
	// in a suspicious interval versus a filtered-out rating. §IV.A sets
	// it to 1. Zero means 1.
	B float64
	// Forgetting is the per-day exponential decay λ applied to S and F
	// before each update ([8]'s forgetting scheme; the Record
	// Maintenance module). 1 disables forgetting. Zero means 1.
	Forgetting float64
	// MaliciousThreshold is the trust value below which a rater is
	// declared malicious (§IV.B uses 0.5 — i.e. below neutral). Zero
	// means 0.5.
	MaliciousThreshold float64
	// InitialS and InitialF are pseudo-evidence seeded into every fresh
	// record — the "initialization of rater's trust" the Record
	// Maintenance module owns (§III.B). Zero values give the paper's
	// neutral start (S=F=0, trust 0.5); positive InitialF implements
	// newcomer skepticism (fresh raters must earn their way above the
	// aggregation floor), which blunts sybil identities at the cost of
	// a slower honest cold start (see ablation-churn).
	InitialS, InitialF float64
}

func (c ManagerConfig) withDefaults() ManagerConfig {
	if c.B == 0 {
		c.B = 1
	}
	if c.Forgetting == 0 {
		c.Forgetting = 1
	}
	if c.MaliciousThreshold == 0 {
		c.MaliciousThreshold = 0.5
	}
	return c
}

// Validate reports configuration errors after defaulting.
func (c ManagerConfig) Validate() error {
	c = c.withDefaults()
	if c.B <= 0 || c.B > 1 {
		return fmt.Errorf("trust: b=%g outside (0,1]", c.B)
	}
	if c.Forgetting <= 0 || c.Forgetting > 1 {
		return fmt.Errorf("trust: forgetting=%g outside (0,1]", c.Forgetting)
	}
	if c.MaliciousThreshold <= 0 || c.MaliciousThreshold >= 1 {
		return fmt.Errorf("trust: malicious threshold %g outside (0,1)", c.MaliciousThreshold)
	}
	if c.InitialS < 0 || c.InitialF < 0 || math.IsNaN(c.InitialS) || math.IsNaN(c.InitialF) {
		return fmt.Errorf("trust: initial evidence S=%g F=%g", c.InitialS, c.InitialF)
	}
	return nil
}

// Manager maintains trust records for a rater population. It is not
// safe for concurrent use.
type Manager struct {
	cfg     ManagerConfig
	records map[rating.RaterID]*Record
}

// NewManager builds a manager; it returns an error on invalid config.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Manager{
		cfg:     cfg.withDefaults(),
		records: make(map[rating.RaterID]*Record),
	}, nil
}

// Update applies Procedure 2 step 6-7 for one rater at time now:
// F += f + b·C and S += n − f − s, after the forgetting decay.
// Invalid observations are rejected.
func (m *Manager) Update(id rating.RaterID, obs Observation, now float64) error {
	if err := obs.Validate(); err != nil {
		return err
	}
	rec := m.record(id)
	m.forget(rec, now)
	rec.F += float64(obs.Filtered) + m.cfg.B*obs.SuspicionMass
	rec.S += float64(obs.N - obs.Filtered - obs.Suspicious)
	rec.LastUpdate = now
	return nil
}

// UpdateBatch applies Update for every rater in obs.
func (m *Manager) UpdateBatch(obs map[rating.RaterID]Observation, now float64) error {
	// Deterministic order keeps error reporting stable.
	ids := make([]rating.RaterID, 0, len(obs))
	for id := range obs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := m.Update(id, obs[id], now); err != nil {
			return fmt.Errorf("rater %d: %w", id, err)
		}
	}
	return nil
}

func (m *Manager) record(id rating.RaterID) *Record {
	rec, ok := m.records[id]
	if !ok {
		rec = &Record{S: m.cfg.InitialS, F: m.cfg.InitialF}
		m.records[id] = rec
	}
	return rec
}

func (m *Manager) forget(rec *Record, now float64) {
	if m.cfg.Forgetting >= 1 || now <= rec.LastUpdate {
		return
	}
	decay := math.Pow(m.cfg.Forgetting, now-rec.LastUpdate)
	rec.S *= decay
	rec.F *= decay
}

// Trust returns the rater's current trust value; unknown raters get
// the configured prior (the neutral 0.5 by default).
func (m *Manager) Trust(id rating.RaterID) float64 {
	rec, ok := m.records[id]
	if !ok {
		return (Record{S: m.cfg.InitialS, F: m.cfg.InitialF}).Trust()
	}
	return rec.Trust()
}

// Record returns a copy of the rater's record and whether it exists.
func (m *Manager) Record(id rating.RaterID) (Record, bool) {
	rec, ok := m.records[id]
	if !ok {
		return Record{}, false
	}
	return *rec, true
}

// Snapshot returns all raters' trust values.
func (m *Manager) Snapshot() map[rating.RaterID]float64 {
	out := make(map[rating.RaterID]float64, len(m.records))
	for id, rec := range m.records {
		out[id] = rec.Trust()
	}
	return out
}

// Malicious returns the raters whose trust is below the malicious
// threshold, sorted by ID.
func (m *Manager) Malicious() []rating.RaterID {
	var out []rating.RaterID
	for id, rec := range m.records {
		if rec.Trust() < m.cfg.MaliciousThreshold {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of tracked raters.
func (m *Manager) Len() int { return len(m.records) }

// TrustDistribution bins every tracked rater's current trust value
// into the given sorted upper bounds (cumulative "le" semantics: out[i]
// counts raters with trust <= bounds[i]; trust lies in (0,1), so the
// last bound should be 1). It is the scrape-time gauge behind the
// telemetry layer's trust-record histogram — a cheap O(raters) pass
// over the live records, with no mutation and no forgetting applied.
func (m *Manager) TrustDistribution(bounds []float64) []int {
	out := make([]int, len(bounds))
	for _, rec := range m.records {
		t := rec.Trust()
		for i, b := range bounds {
			if t <= b {
				out[i]++
			}
		}
	}
	return out
}

// Records returns a copy of every rater's record, for persistence.
func (m *Manager) Records() map[rating.RaterID]Record {
	out := make(map[rating.RaterID]Record, len(m.records))
	for id, rec := range m.records {
		out[id] = *rec
	}
	return out
}

// Restore replaces the manager's state with the given records
// (copied). Records with negative evidence mass are rejected.
func (m *Manager) Restore(records map[rating.RaterID]Record) error {
	restored := make(map[rating.RaterID]*Record, len(records))
	for id, rec := range records {
		if rec.S < 0 || rec.F < 0 || math.IsNaN(rec.S) || math.IsNaN(rec.F) {
			return fmt.Errorf("trust: restore rater %d: invalid record %+v", id, rec)
		}
		r := rec
		restored[id] = &r
	}
	m.records = restored
	return nil
}

// ErrNoRecommendations is returned by IndirectTrust when no usable
// recommendation exists.
var ErrNoRecommendations = errors.New("trust: no recommendations")

// Recommendation is one rater's statement about another rater's
// rating quality — the "was this review helpful" signal practical
// systems collect (Fig 1's Recommendation Buffer). Value is in [0, 1].
type Recommendation struct {
	From  rating.RaterID
	About rating.RaterID
	Value float64
}

// IndirectTrust computes indirect trust in `about` by trust
// propagation: each recommendation is weighted by the recommender's own
// (recommendation) trust, mirroring the concatenation rule of the
// generic framework [29] — recommendations from distrusted raters
// (trust ≤ 0.5) are discarded.
func (m *Manager) IndirectTrust(about rating.RaterID, recs []Recommendation) (float64, error) {
	var num, den float64
	for _, rec := range recs {
		if rec.About != about {
			continue
		}
		if rec.Value < 0 || rec.Value > 1 || math.IsNaN(rec.Value) {
			return 0, fmt.Errorf("trust: recommendation value %g", rec.Value)
		}
		w := m.Trust(rec.From) - 0.5
		if w <= 0 {
			continue
		}
		num += w * rec.Value
		den += w
	}
	if den == 0 {
		return 0, ErrNoRecommendations
	}
	return num / den, nil
}
