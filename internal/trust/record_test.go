package trust

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randx"
	"repro/internal/rating"
)

func TestRecordTrust(t *testing.T) {
	if got := (Record{}).Trust(); got != 0.5 {
		t.Fatalf("fresh record trust = %g, want 0.5", got)
	}
	if got := (Record{S: 8, F: 0}).Trust(); got != 0.9 {
		t.Fatalf("trust = %g, want 0.9", got)
	}
	if got := (Record{S: 0, F: 8}).Trust(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("trust = %g, want 0.1", got)
	}
}

func TestEntropyTrust(t *testing.T) {
	if got := EntropyTrust(0.5); got != 0 {
		t.Fatalf("EntropyTrust(0.5) = %g", got)
	}
	if got := EntropyTrust(1); got != 1 {
		t.Fatalf("EntropyTrust(1) = %g", got)
	}
	if got := EntropyTrust(0); got != -1 {
		t.Fatalf("EntropyTrust(0) = %g", got)
	}
	// Antisymmetric around 0.5.
	if math.Abs(EntropyTrust(0.8)+EntropyTrust(0.2)) > 1e-12 {
		t.Fatal("entropy trust not antisymmetric")
	}
	if EntropyTrust(0.9) <= EntropyTrust(0.6) {
		t.Fatal("entropy trust not increasing above 0.5")
	}
}

func TestObservationValidate(t *testing.T) {
	good := Observation{N: 5, Filtered: 1, Suspicious: 2, SuspicionMass: 0.7}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Observation{
		{N: -1},
		{N: 2, Filtered: -1},
		{N: 2, Suspicious: 3},
		{N: 2, Filtered: 2, Suspicious: 1},
		{N: 2, SuspicionMass: -1},
		{N: 2, SuspicionMass: math.NaN()},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad observation %d accepted: %+v", i, o)
		}
	}
}

func TestManagerConfigValidate(t *testing.T) {
	if err := (ManagerConfig{}).Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := []ManagerConfig{
		{B: 1.5},
		{B: -1},
		{Forgetting: 1.2},
		{Forgetting: -0.1},
		{MaliciousThreshold: 1},
		{MaliciousThreshold: -0.2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
	if _, err := NewManager(ManagerConfig{B: 2}); err == nil {
		t.Fatal("NewManager accepted bad config")
	}
}

func TestProcedure2Update(t *testing.T) {
	m, err := NewManager(ManagerConfig{B: 1})
	if err != nil {
		t.Fatal(err)
	}
	// n=10, f=2, s=3, C=0.5 -> S += 5, F += 2.5.
	obs := Observation{N: 10, Filtered: 2, Suspicious: 3, SuspicionMass: 0.5}
	if err := m.Update(1, obs, 1); err != nil {
		t.Fatal(err)
	}
	rec, ok := m.Record(1)
	if !ok {
		t.Fatal("record missing")
	}
	if rec.S != 5 || rec.F != 2.5 {
		t.Fatalf("record = %+v, want S=5 F=2.5", rec)
	}
	want := (5.0 + 1) / (5 + 2.5 + 2)
	if got := m.Trust(1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("trust = %g, want %g", got, want)
	}
}

func TestProcedure2BParameter(t *testing.T) {
	// b = 0.5 halves the suspicion charge relative to filter rejections.
	m, _ := NewManager(ManagerConfig{B: 0.5})
	if err := m.Update(1, Observation{N: 4, SuspicionMass: 2}, 0); err != nil {
		t.Fatal(err)
	}
	rec, _ := m.Record(1)
	if rec.F != 1 {
		t.Fatalf("F = %g, want 1 (b·C = 0.5·2)", rec.F)
	}
}

func TestUnknownRaterNeutral(t *testing.T) {
	m, _ := NewManager(ManagerConfig{})
	if got := m.Trust(99); got != 0.5 {
		t.Fatalf("unknown rater trust = %g", got)
	}
	if _, ok := m.Record(99); ok {
		t.Fatal("phantom record")
	}
}

func TestHonestTrustRises(t *testing.T) {
	m, _ := NewManager(ManagerConfig{})
	for day := 1; day <= 12; day++ {
		if err := m.Update(1, Observation{N: 10}, float64(day)); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Trust(1); got < 0.95 {
		t.Fatalf("honest trust after 12 updates = %g", got)
	}
}

func TestColluderTrustFalls(t *testing.T) {
	m, _ := NewManager(ManagerConfig{})
	for day := 1; day <= 12; day++ {
		obs := Observation{N: 5, Suspicious: 5, SuspicionMass: 2}
		if err := m.Update(2, obs, float64(day)); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Trust(2); got > 0.1 {
		t.Fatalf("colluder trust after 12 updates = %g", got)
	}
}

func TestForgetting(t *testing.T) {
	// With aggressive forgetting, old evidence decays: a rater with a
	// bad past who turns honest recovers faster than without.
	build := func(forgetting float64) float64 {
		m, _ := NewManager(ManagerConfig{Forgetting: forgetting})
		if err := m.Update(1, Observation{N: 10, Filtered: 10}, 0); err != nil {
			t.Fatal(err)
		}
		for day := 30; day <= 60; day += 30 {
			if err := m.Update(1, Observation{N: 10}, float64(day)); err != nil {
				t.Fatal(err)
			}
		}
		return m.Trust(1)
	}
	withForgetting := build(0.9)
	without := build(1)
	if withForgetting <= without {
		t.Fatalf("forgetting %g did not speed recovery over %g", withForgetting, without)
	}
}

func TestForgettingNeverAppliedBackwards(t *testing.T) {
	m, _ := NewManager(ManagerConfig{Forgetting: 0.5})
	if err := m.Update(1, Observation{N: 4}, 10); err != nil {
		t.Fatal(err)
	}
	// An update at an earlier time must not inflate via negative Δt.
	if err := m.Update(1, Observation{N: 0}, 5); err != nil {
		t.Fatal(err)
	}
	rec, _ := m.Record(1)
	if rec.S > 4+1e-9 {
		t.Fatalf("S = %g grew from backwards time", rec.S)
	}
}

func TestUpdateRejectsInvalid(t *testing.T) {
	m, _ := NewManager(ManagerConfig{})
	if err := m.Update(1, Observation{N: 1, Filtered: 2}, 0); err == nil {
		t.Fatal("invalid observation accepted")
	}
}

func TestUpdateBatchAndSnapshot(t *testing.T) {
	m, _ := NewManager(ManagerConfig{})
	obs := map[rating.RaterID]Observation{
		1: {N: 10},
		2: {N: 10, Filtered: 8},
	}
	if err := m.UpdateBatch(obs, 1); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot size %d", len(snap))
	}
	if snap[1] <= snap[2] {
		t.Fatalf("honest %g not above filtered %g", snap[1], snap[2])
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestUpdateBatchPropagatesError(t *testing.T) {
	m, _ := NewManager(ManagerConfig{})
	obs := map[rating.RaterID]Observation{7: {N: 1, Suspicious: 5}}
	if err := m.UpdateBatch(obs, 0); err == nil {
		t.Fatal("invalid batch accepted")
	}
}

func TestMalicious(t *testing.T) {
	m, _ := NewManager(ManagerConfig{MaliciousThreshold: 0.5})
	_ = m.Update(1, Observation{N: 10}, 1)
	_ = m.Update(2, Observation{N: 10, Filtered: 9}, 1)
	_ = m.Update(3, Observation{N: 10, Filtered: 10}, 1)
	mal := m.Malicious()
	if len(mal) != 2 || mal[0] != 2 || mal[1] != 3 {
		t.Fatalf("malicious = %v", mal)
	}
}

func TestIndirectTrust(t *testing.T) {
	m, _ := NewManager(ManagerConfig{})
	_ = m.Update(1, Observation{N: 20}, 1)               // trusted recommender
	_ = m.Update(2, Observation{N: 20, Filtered: 18}, 1) // distrusted recommender
	recs := []Recommendation{
		{From: 1, About: 9, Value: 0.9},
		{From: 2, About: 9, Value: 0.1}, // must be discarded
		{From: 1, About: 8, Value: 0.2}, // other subject
	}
	got, err := m.IndirectTrust(9, recs)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.9 {
		t.Fatalf("indirect trust = %g, want 0.9", got)
	}
}

func TestIndirectTrustErrors(t *testing.T) {
	m, _ := NewManager(ManagerConfig{})
	if _, err := m.IndirectTrust(9, nil); !errors.Is(err, ErrNoRecommendations) {
		t.Fatalf("err = %v", err)
	}
	// Only distrusted recommenders: still no recommendation.
	_ = m.Update(2, Observation{N: 20, Filtered: 18}, 1)
	recs := []Recommendation{{From: 2, About: 9, Value: 0.4}}
	if _, err := m.IndirectTrust(9, recs); !errors.Is(err, ErrNoRecommendations) {
		t.Fatalf("err = %v", err)
	}
	_ = m.Update(1, Observation{N: 20}, 1)
	bad := []Recommendation{{From: 1, About: 9, Value: 1.5}}
	if _, err := m.IndirectTrust(9, bad); err == nil {
		t.Fatal("bad recommendation value accepted")
	}
}

// Property: trust always stays in (0, 1) and more honest evidence never
// lowers trust.
func TestTrustBoundsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		m, err := NewManager(ManagerConfig{
			B:          0.1 + 0.9*rng.Float64(),
			Forgetting: 0.5 + 0.5*rng.Float64(),
		})
		if err != nil {
			return false
		}
		id := rating.RaterID(1)
		prevTrust := m.Trust(id)
		now := 0.0
		for step := 0; step < 30; step++ {
			now += rng.Uniform(0, 5)
			n := rng.Intn(20)
			f := 0
			s := 0
			if n > 0 {
				f = rng.Intn(n + 1)
				s = rng.Intn(n - f + 1)
			}
			obs := Observation{N: n, Filtered: f, Suspicious: s, SuspicionMass: rng.Uniform(0, 3)}
			if err := m.Update(id, obs, now); err != nil {
				return false
			}
			tr := m.Trust(id)
			if tr <= 0 || tr >= 1 {
				return false
			}
			// Purely honest evidence must not lower trust below neutral.
			if f == 0 && s == 0 && obs.SuspicionMass == 0 && n > 0 && tr < prevTrust && tr < 0.5 {
				return false
			}
			prevTrust = tr
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestTrustDistribution checks the cumulative "le" bin semantics: each
// bin counts every live record whose trust is at or below its bound.
func TestTrustDistribution(t *testing.T) {
	m, err := NewManager(ManagerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Rater 1: heavily suspicious; rater 2: honest; rater 3: untouched
	// neutral record created by a lookup-free update with no evidence.
	if err := m.Update(1, Observation{N: 10, Filtered: 5, Suspicious: 5, SuspicionMass: 8}, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(2, Observation{N: 10}, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(3, Observation{}, 0); err != nil {
		t.Fatal(err)
	}
	bounds := []float64{0.25, 0.5, 0.75, 1}
	got := m.TrustDistribution(bounds)
	if len(got) != len(bounds) {
		t.Fatalf("len = %d, want %d", len(got), len(bounds))
	}
	// Cumulative: each bin includes everything in the bins before it.
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("bins not cumulative: %v", got)
		}
	}
	if got[len(got)-1] != m.Len() {
		t.Fatalf("last bin = %d, want all %d records", got[len(got)-1], m.Len())
	}
	if got[0] < 1 {
		t.Fatalf("suspicious rater not in lowest bin: %v (trust=%g)", got, m.Trust(1))
	}
	if got[1] < 2 {
		t.Fatalf("neutral record above 0.5 bin: %v (trust=%g)", got, m.Trust(3))
	}
}
