package wal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/randx"
	"repro/internal/rating"
)

// sysTarget adapts core.System to the Replay Target.
type sysTarget struct{ sys *core.System }

func (t sysTarget) Submit(r rating.Rating) error { return t.sys.Submit(r) }
func (t sysTarget) Process(start, end float64) error {
	_, err := t.sys.ProcessWindow(start, end)
	return err
}

func newSystem(t *testing.T) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// canonicalState renders a system's snapshot in a sorted, comparison-
// stable form. Ratings and trust records survive the JSON round trip
// bit-exactly, so equality here is bit-identity of the state.
type canonicalState struct {
	Version int
	Ratings []map[string]float64
	Records []map[string]float64
}

func canonical(t *testing.T, sys *core.System) canonicalState {
	t.Helper()
	var buf bytes.Buffer
	if err := sys.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var raw struct {
		Version int                  `json:"version"`
		Ratings []map[string]float64 `json:"ratings"`
		Records []map[string]float64 `json:"records"`
	}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	key := func(m map[string]float64) string {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			sb.WriteString(k)
			sb.WriteString(strconv.FormatFloat(m[k], 'x', -1, 64))
		}
		return sb.String()
	}
	sort.Slice(raw.Ratings, func(i, j int) bool { return key(raw.Ratings[i]) < key(raw.Ratings[j]) })
	sort.Slice(raw.Records, func(i, j int) bool { return key(raw.Records[i]) < key(raw.Records[j]) })
	return canonicalState{Version: raw.Version, Ratings: raw.Ratings, Records: raw.Records}
}

// trace builds a deterministic workload: n ratings over several
// objects with a maintenance window every procEvery ratings.
func trace(seed int64, n, procEvery int) []Record {
	rng := randx.New(seed)
	var recs []Record
	lastProc := 0.0
	for i := 0; i < n; i++ {
		tm := float64(i) * 0.3
		recs = append(recs, RatingRecord(rating.Rating{
			Rater:  rating.RaterID(rng.Intn(12)),
			Object: rating.ObjectID(rng.Intn(4)),
			Value:  randx.Quantize(rng.Float64(), 11, true),
			Time:   tm,
		}))
		if (i+1)%procEvery == 0 && tm > lastProc {
			recs = append(recs, ProcessRecord(lastProc, tm))
			lastProc = tm
		}
	}
	return recs
}

// TestCrashAtEveryRecordBoundary is the headline durability guarantee:
// for a trace of 200+ ratings (with maintenance windows mixed in),
// crash the filesystem after every acknowledged record, recover, and
// require the recovered System to be bit-identical to a never-crashed
// reference fed the same prefix. A mid-trace WAL snapshot makes later
// boundaries exercise the snapshot+tail path too.
func TestCrashAtEveryRecordBoundary(t *testing.T) {
	recs := trace(7, 210, 40)

	fs := faultinject.NewMemFS()
	opts := Options{Dir: "w", FS: fs, Policy: SyncAlways, SegmentBytes: 1 << 10}
	l, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Shadow system tracks exactly what has been appended, so the
	// mid-trace snapshot writes the correct covered state.
	shadow := newSystem(t)
	disks := make([]map[string][]byte, 0, len(recs))
	for i, rec := range recs {
		if err := l.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if n := Replay(sysTarget{shadow}, []Record{rec}, nil); n != 1 {
			t.Fatalf("shadow replay of record %d failed", i)
		}
		if i == len(recs)/2 {
			if err := l.Snapshot(shadow.WriteSnapshot); err != nil {
				t.Fatal(err)
			}
		}
		disks = append(disks, fs.DurableFiles())
	}
	l.Close()

	// Reference states for every prefix, built once.
	ref := newSystem(t)
	for k := range recs {
		if n := Replay(sysTarget{ref}, recs[k:k+1], nil); n != 1 {
			t.Fatalf("reference replay of record %d failed", k)
		}
		want := canonical(t, ref)

		fs2 := faultinject.NewMemFSFromFiles(disks[k])
		_, recov, err := Open(Options{Dir: "w", FS: fs2, Policy: SyncAlways, SegmentBytes: 1 << 10})
		if err != nil {
			t.Fatalf("boundary %d: recovery failed: %v", k, err)
		}
		got := newSystem(t)
		if recov.Snapshot != nil {
			if err := got.LoadSnapshot(bytes.NewReader(recov.Snapshot)); err != nil {
				t.Fatalf("boundary %d: snapshot load: %v", k, err)
			}
		}
		if n := Replay(sysTarget{got}, recov.Records, nil); n != len(recov.Records) {
			t.Fatalf("boundary %d: replay applied %d of %d", k, n, len(recov.Records))
		}
		if g := canonical(t, got); !reflect.DeepEqual(g, want) {
			t.Fatalf("boundary %d: recovered state diverges from reference", k)
		}
	}
}

// TestTornFinalRecordEveryOffset truncates the durable log inside the
// final frame at every possible byte offset; recovery must warn, drop
// only the final record, and never refuse to start.
func TestTornFinalRecordEveryOffset(t *testing.T) {
	fs := faultinject.NewMemFS()
	opts := Options{Dir: "w", FS: fs, Policy: SyncAlways, SegmentBytes: 1 << 20}
	l, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		if err := l.Append(mkRating(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	disk := fs.DurableFiles()
	var segName string
	for name := range disk {
		if strings.Contains(name, segmentPrefix) {
			segName = name
		}
	}
	data := disk[segName]
	// Find where the last frame starts.
	recs, _, perr := parseFrames(data)
	if perr != nil || len(recs) != n {
		t.Fatalf("setup: %v, %d records", perr, len(recs))
	}
	lastStart := 0
	off := 0
	for i := 0; i < n; i++ {
		lastStart = off
		plen := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		off += frameHeader + plen
	}

	for cut := lastStart + 1; cut < len(data); cut++ {
		files := map[string][]byte{segName: append([]byte(nil), data[:cut]...)}
		fs2 := faultinject.NewMemFSFromFiles(files)
		warned := false
		o := Options{Dir: "w", FS: fs2, Policy: SyncAlways,
			Warnf: func(string, ...any) { warned = true }}
		l2, recov, err := Open(o)
		if err != nil {
			t.Fatalf("cut %d: startup refused: %v", cut, err)
		}
		if !recov.Torn || !warned {
			t.Fatalf("cut %d: tear not reported (torn=%v warned=%v)", cut, recov.Torn, warned)
		}
		if len(recov.Records) != n-1 {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(recov.Records), n-1)
		}
		// The log must keep working: append and re-recover cleanly.
		if err := l2.Append(mkRating(100)); err != nil {
			t.Fatalf("cut %d: append after tear: %v", cut, err)
		}
		l2.Close()
		_, recov2, err := Open(Options{Dir: "w", FS: fs2})
		if err != nil {
			t.Fatalf("cut %d: second recovery: %v", cut, err)
		}
		if recov2.Torn {
			t.Fatalf("cut %d: tear reported again after truncation", cut)
		}
		times := recordTimes(recov2.Records)
		if len(times) != n || times[len(times)-1] != 100 {
			t.Fatalf("cut %d: post-tear log %v", cut, times)
		}
	}
}

// TestTornTailAcrossSegmentBoundary tears the last frame of a
// non-final segment (the shape a failed append leaves behind) and
// checks recovery truncates it and keeps replaying later segments.
func TestTornTailAcrossSegmentBoundary(t *testing.T) {
	fs := faultinject.NewMemFS()
	opts := Options{Dir: "w", FS: fs, Policy: SyncAlways, SegmentBytes: 1 << 20}
	l, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		l.Append(mkRating(i))
	}
	l.Close()
	disk := fs.DurableFiles()
	seg0 := "w/" + segmentName(0)
	// Tear 3 bytes off segment 0's final frame and add a clean
	// follow-up segment, as the seal-and-rotate discipline produces.
	disk[seg0] = disk[seg0][:len(disk[seg0])-3]
	disk["w/"+segmentName(1)] = appendFrame(nil, mkRating(9))

	fs2 := faultinject.NewMemFSFromFiles(disk)
	_, recov, err := Open(Options{Dir: "w", FS: fs2})
	if err != nil {
		t.Fatal(err)
	}
	if !recov.Torn {
		t.Fatal("tear not reported")
	}
	times := recordTimes(recov.Records)
	want := []float64{0, 1, 2, 9}
	if fmt.Sprint(times) != fmt.Sprint(want) {
		t.Fatalf("recovered %v, want %v", times, want)
	}
}

// chaosSeeds returns how many seeds the chaos sweep runs. CHAOS_SEEDS
// raises it (make chaos runs a denser sweep); the default keeps the
// tier-1 suite fast.
func chaosSeeds() int {
	if s := os.Getenv("CHAOS_SEEDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 8
}

// TestChaosSeededFaultSweep drives a scripted workload against a
// fault-injecting filesystem, one deterministic run per seed. The
// invariants, regardless of which operations fail or when the crash
// lands:
//
//   - recovery never returns an error;
//   - the recovered sequence is an ordered subsequence of the appends
//     that were attempted;
//   - every acknowledged append (Append returned nil under
//     SyncAlways) is present in the recovered sequence.
//
// Scheduling uses no wall clock and no global randomness: the seed
// fully determines every run.
func TestChaosSeededFaultSweep(t *testing.T) {
	for seed := int64(1); seed <= int64(chaosSeeds()); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaos(t, seed)
		})
	}
}

func runChaos(t *testing.T, seed int64) {
	const (
		appends  = 400
		snapEach = 120
		density  = 0.03
	)
	fs := faultinject.NewMemFS()
	opts := Options{Dir: "w", FS: fs, Policy: SyncAlways, SegmentBytes: 1 << 9}
	l, _, err := Open(opts)
	if err != nil {
		t.Fatalf("clean open failed: %v", err)
	}

	var acked []float64       // ids of acknowledged appends
	var ackedAtSnap []float64 // baseline state at the last successful snapshot
	rng := randx.New(seed)
	fs.SetInjector(faultinject.NewSeededInjector(rng.Int63(), density))

	crashed := false
	for i := 0; i < appends; i++ {
		id := float64(i)
		var rec Record
		if i%37 == 36 {
			rec = ProcessRecord(id, id+0.5)
		} else {
			rec = RatingRecord(rating.Rating{Rater: 1, Object: 1, Value: 0.5, Time: id})
		}
		err := l.Append(rec)
		switch {
		case err == nil:
			acked = append(acked, id)
		case errors.Is(err, faultinject.ErrCrashed):
			crashed = true
		}
		if crashed {
			break
		}
		if (i+1)%snapEach == 0 {
			state := append([]float64(nil), acked...)
			err := l.Snapshot(func(w io.Writer) error {
				return json.NewEncoder(w).Encode(state)
			})
			if err == nil {
				ackedAtSnap = state
			} else if errors.Is(err, faultinject.ErrCrashed) {
				crashed = true
				break
			}
		}
	}
	_ = ackedAtSnap // the baseline is re-derived from disk below

	// Power loss (or clean end of run), then recovery with the
	// injector disabled — a healthy disk controller after reboot.
	if crashed {
		fs.Crash()
	} else {
		l.Close()
	}
	fs.SetInjector(nil)

	_, recov, err := Open(Options{Dir: "w", FS: fs, Policy: SyncAlways, SegmentBytes: 1 << 9})
	if err != nil {
		t.Fatalf("recovery refused to start: %v", err)
	}
	var got []float64
	if recov.Snapshot != nil {
		if err := json.Unmarshal(recov.Snapshot, &got); err != nil {
			t.Fatalf("recovered snapshot corrupt: %v", err)
		}
	}
	got = append(got, recordTimes(recov.Records)...)

	// Ordered subsequence of attempted appends (ids are 0..n-1 in
	// order, so strictly increasing ids in range is equivalent).
	for i, id := range got {
		if id < 0 || id >= appends {
			t.Fatalf("recovered unknown id %v", id)
		}
		if i > 0 && got[i] <= got[i-1] {
			t.Fatalf("recovered ids out of order at %d: %v", i, got[i-3:i+1])
		}
	}
	// Every acked record survived.
	idx := make(map[float64]bool, len(got))
	for _, id := range got {
		idx[id] = true
	}
	for _, id := range acked {
		if !idx[id] {
			t.Fatalf("acked id %v lost (crashed=%v, recovered %d of %d acked)",
				id, crashed, len(got), len(acked))
		}
	}
}
