package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Snapshot files end in a fixed 24-byte footer so any reader — local
// recovery or a follower bootstrapping over the network — can verify
// the bytes without trusting the transport:
//
//	uint64 content length | uint64 records | uint32 CRC32C | "WSF1"
//
// The CRC covers the content followed by the two footer integers, so
// a corrupt footer can't pair with intact content (and vice versa).
// Records is the log's cumulative appended-record count at snapshot
// time — the baseline a replication follower measures its lag from.
// Snapshots written before this format (no trailing magic) verify as
// legacy: accepted by recovery, refused by the bootstrap path.
const snapFooterLen = 24

var snapMagic = [4]byte{'W', 'S', 'F', '1'}

// SnapshotFooter is the verified trailer of a snapshot file.
type SnapshotFooter struct {
	// Records is the log's cumulative appended-record count at the
	// moment the snapshot was taken.
	Records uint64
}

func makeSnapshotFooter(contentLen, records uint64, contentCRC uint32) [snapFooterLen]byte {
	var ft [snapFooterLen]byte
	binary.LittleEndian.PutUint64(ft[0:], contentLen)
	binary.LittleEndian.PutUint64(ft[8:], records)
	crc := crc32.Update(contentCRC, crcTable, ft[:16])
	binary.LittleEndian.PutUint32(ft[16:], crc)
	copy(ft[20:], snapMagic[:])
	return ft
}

// SplitSnapshotFooter validates data's trailing snapshot footer and
// strips it, returning the content. present reports whether a footer
// was found at all: a legacy (pre-footer) snapshot returns the data
// unchanged with present == false and no error, while a footer that
// is present but fails verification returns an error.
func SplitSnapshotFooter(data []byte) (content []byte, ft SnapshotFooter, present bool, err error) {
	if len(data) < snapFooterLen || !bytes.Equal(data[len(data)-4:], snapMagic[:]) {
		return data, SnapshotFooter{}, false, nil
	}
	f := data[len(data)-snapFooterLen:]
	content = data[:len(data)-snapFooterLen]
	clen := binary.LittleEndian.Uint64(f[0:])
	records := binary.LittleEndian.Uint64(f[8:])
	crc := binary.LittleEndian.Uint32(f[16:])
	if clen != uint64(len(content)) {
		return nil, SnapshotFooter{}, true, fmt.Errorf("wal: snapshot footer length %d != content length %d", clen, len(content))
	}
	want := crc32.Update(crc32.Checksum(content, crcTable), crcTable, f[:16])
	if want != crc {
		return nil, SnapshotFooter{}, true, errors.New("wal: snapshot footer checksum mismatch")
	}
	return content, SnapshotFooter{Records: records}, true, nil
}

// crcCountWriter tees writes into a running CRC32C and byte count, so
// Snapshot can append a footer without buffering the content.
type crcCountWriter struct {
	w   io.Writer
	n   int64
	crc uint32
}

func (cw *crcCountWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crcTable, p[:n])
	cw.n += int64(n)
	return n, err
}
