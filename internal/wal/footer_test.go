package wal

import (
	"bytes"
	"io"
	"os"
	"path"
	"testing"

	"repro/internal/faultinject"
)

func snapshotState(t *testing.T, l *Log, state string) {
	t.Helper()
	if err := l.Snapshot(func(w io.Writer) error { _, err := io.WriteString(w, state); return err }); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
}

func TestSnapshotFooterRoundTrip(t *testing.T) {
	fsys := faultinject.NewMemFS()
	l := openTestLog(t, fsys, 1<<20)
	for i := 0; i < 7; i++ {
		if err := l.Append(RatingRecord(testRating(i))); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	snapshotState(t, l, `{"v":1}`)

	raw, cur, ft, err := l.LatestSnapshot()
	if err != nil {
		t.Fatalf("LatestSnapshot: %v", err)
	}
	if ft.Records != 7 {
		t.Fatalf("footer records = %d, want 7", ft.Records)
	}
	if cur.Seg != l.SegmentSeq() || cur.Off != 0 {
		t.Fatalf("snapshot cursor %+v, want {%d 0}", cur, l.SegmentSeq())
	}
	content, ft2, present, err := SplitSnapshotFooter(raw)
	if err != nil || !present || ft2 != ft {
		t.Fatalf("SplitSnapshotFooter: present=%v ft=%+v err=%v", present, ft2, err)
	}
	if string(content) != `{"v":1}` {
		t.Fatalf("content %q", content)
	}

	// Recovery strips the footer before handing the snapshot out.
	l.Close()
	_, rec, err := Open(Options{Dir: "wal", FS: fsys, Policy: SyncNever})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if string(rec.Snapshot) != `{"v":1}` {
		t.Fatalf("recovered snapshot %q, want footer stripped", rec.Snapshot)
	}
}

// A corrupted footer (or content, which the footer CRC also binds)
// must make recovery fall back instead of loading damaged state.
func TestSnapshotCorruptFooterFallsBack(t *testing.T) {
	for _, tc := range []struct {
		name string
		flip func(data []byte) []byte
	}{
		{"footer-crc", func(d []byte) []byte { d[len(d)-6] ^= 0xff; return d }},
		{"footer-count", func(d []byte) []byte { d[len(d)-16] ^= 0x01; return d }},
		{"content", func(d []byte) []byte { d[2] ^= 0xff; return d }},
		{"truncated", func(d []byte) []byte { return append(d[:3], d[len(d)-snapFooterLen:]...) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fsys := faultinject.NewMemFS()
			l := openTestLog(t, fsys, 1<<20)
			if err := l.Append(RatingRecord(testRating(1))); err != nil {
				t.Fatalf("append: %v", err)
			}
			snapshotState(t, l, `{"good":1}`)
			if err := l.Append(RatingRecord(testRating(2))); err != nil {
				t.Fatalf("append: %v", err)
			}
			snapshotState(t, l, `{"good":2}`)
			l.Close()

			// Corrupt the newest snapshot on disk.
			name := ""
			names, err := fsys.ReadDir("wal")
			if err != nil {
				t.Fatalf("readdir: %v", err)
			}
			best := -1
			for _, n := range names {
				if seq, ok := parseSeq(n, snapPrefix, snapSuffix); ok && seq > best {
					best, name = seq, n
				}
			}
			full := path.Join("wal", name)
			data, err := readFile(fsys, full)
			if err != nil {
				t.Fatalf("read snap: %v", err)
			}
			data = tc.flip(bytes.Clone(data))
			f, err := fsys.OpenFile(full, os.O_WRONLY|os.O_TRUNC, 0o644)
			if err != nil {
				t.Fatalf("rewrite snap: %v", err)
			}
			if _, err := f.Write(data); err != nil {
				t.Fatalf("rewrite snap: %v", err)
			}
			f.Close()

			warned := false
			_, rec, err := Open(Options{Dir: "wal", FS: fsys, Policy: SyncNever,
				Warnf: func(string, ...any) { warned = true }})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if string(rec.Snapshot) == `{"good":2}` {
				t.Fatal("recovery loaded a snapshot with a corrupted footer")
			}
			if !warned {
				t.Fatal("expected a verification warning")
			}
			// The damaged snapshot also can't be served to a follower.
			// (Recovery compacted it away or fell back past it; either
			// way LatestSnapshot must not return damaged bytes as ok.)
			if _, _, present, err := SplitSnapshotFooter(data); present && err == nil {
				t.Fatal("corrupted snapshot still verifies")
			}
		})
	}
}

// Legacy snapshots (written before the footer format) still recover:
// no magic means no footer, not corruption.
func TestSnapshotLegacyNoFooterStillRecovers(t *testing.T) {
	fsys := faultinject.NewMemFS()
	l := openTestLog(t, fsys, 1<<20)
	snapshotState(t, l, `{"legacy":true}`)
	l.Close()

	// Strip the footer to emulate a pre-footer file.
	names, _ := fsys.ReadDir("wal")
	for _, n := range names {
		if _, ok := parseSeq(n, snapPrefix, snapSuffix); !ok {
			continue
		}
		full := path.Join("wal", n)
		data, err := readFile(fsys, full)
		if err != nil {
			t.Fatalf("read snap: %v", err)
		}
		f, err := fsys.OpenFile(full, os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			t.Fatalf("rewrite snap: %v", err)
		}
		if _, err := f.Write(data[:len(data)-snapFooterLen]); err != nil {
			t.Fatalf("rewrite snap: %v", err)
		}
		f.Close()
	}

	l2, rec, err := Open(Options{Dir: "wal", FS: fsys, Policy: SyncNever})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if string(rec.Snapshot) != `{"legacy":true}` {
		t.Fatalf("legacy snapshot not recovered: %q", rec.Snapshot)
	}
	// But the bootstrap path refuses it: remote verification needs the
	// footer.
	if _, _, _, err := l2.LatestSnapshot(); err == nil {
		t.Fatal("LatestSnapshot accepted a footer-less snapshot")
	}
}
