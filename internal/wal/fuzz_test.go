package wal

import (
	"bytes"
	"testing"

	"repro/internal/rating"
)

// fuzzSeedFrames builds a few valid frame streams used to seed both
// fuzzers: recovery code must keep its invariants on real data too.
func fuzzSeedFrames() [][]byte {
	r1 := RatingRecord(rating.Rating{Rater: 7, Object: 42, Value: 0.85, Time: 12.5})
	r2 := RatingRecord(rating.Rating{Rater: -1, Object: 0, Value: -0.1, Time: 0})
	p := ProcessRecord(0, 30)
	var one, two, three []byte
	one = appendFrame(one, r1)
	two = appendFrame(appendFrame(two, r1), p)
	three = appendFrame(appendFrame(appendFrame(three, r1), r2), p)
	return [][]byte{one, two, three}
}

// FuzzParseFrames feeds arbitrary bytes to the segment parser. The
// recovery invariants: never panic, the good offset stays within the
// input, a clean parse consumes everything, the good prefix reparses
// cleanly, and re-encoding the decoded records reproduces the good
// prefix byte for byte (the framing is canonical).
func FuzzParseFrames(f *testing.F) {
	for _, seed := range fuzzSeedFrames() {
		f.Add(seed)
		f.Add(seed[:len(seed)-3])            // torn tail
		f.Add(append([]byte{0xff}, seed...)) // garbage prefix
		bad := append([]byte(nil), seed...)  // flipped payload bit
		bad[len(bad)-1] ^= 0x40
		f.Add(bad)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good, err := parseFrames(data)
		if good < 0 || good > len(data) {
			t.Fatalf("good offset %d out of range [0,%d]", good, len(data))
		}
		if err == nil && good != len(data) {
			t.Fatalf("clean parse stopped at %d of %d", good, len(data))
		}
		// The accepted prefix is exactly what recovery keeps after
		// truncating a torn tail: it must itself parse cleanly.
		recs2, good2, err2 := parseFrames(data[:good])
		if err2 != nil || good2 != good || len(recs2) != len(recs) {
			t.Fatalf("good prefix reparse: recs %d->%d good %d->%d err %v",
				len(recs), len(recs2), good, good2, err2)
		}
		// Canonical encoding: re-framing the records rebuilds the prefix.
		var re []byte
		for _, rec := range recs {
			re = appendFrame(re, rec)
		}
		if !bytes.Equal(re, data[:good]) {
			t.Fatalf("re-encoded %d records differ from accepted prefix", len(recs))
		}
	})
}

// FuzzDecodeRecord feeds arbitrary payloads to the record decoder:
// corrupt input must produce an error, never a panic, and any payload
// it accepts must re-encode to the identical bytes.
func FuzzDecodeRecord(f *testing.F) {
	for _, seed := range fuzzSeedFrames() {
		f.Add(seed[frameHeader:]) // first frame's payload (plus trailing frames; decode rejects)
	}
	f.Add([]byte{byte(TypeRating)})
	f.Add([]byte{byte(TypeProcess), 1, 2, 3})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := decodeRecord(payload)
		if err != nil {
			return
		}
		framed := appendFrame(nil, rec)
		if !bytes.Equal(framed[frameHeader:], payload) {
			t.Fatalf("accepted payload does not round-trip (len %d)", len(payload))
		}
	})
}
