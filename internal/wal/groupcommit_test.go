package wal

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/faultinject"
)

// countSyncs installs an injector that counts file fsyncs without
// faulting, and returns the counter.
func countSyncs(fs *faultinject.MemFS) *int {
	n := new(int)
	fs.SetInjector(func(op faultinject.Op) *faultinject.Fault {
		if op.Kind == "sync" {
			*n++
		}
		return nil
	})
	return n
}

func TestBufferedAppendVolatileUntilCommit(t *testing.T) {
	fs := faultinject.NewMemFS()
	l, _, err := Open(testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendAllBuffered([]Record{mkRating(0), mkRating(1)}); err != nil {
		t.Fatal(err)
	}
	// No Commit: a crash may lose the batch — and with MemFS it must,
	// since nothing fsynced.
	fs.Crash()
	l2, rec, err := Open(testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("uncommitted buffered batch survived crash: %d records", len(rec.Records))
	}

	tok, err := l2.AppendAllBuffered([]Record{mkRating(2), mkRating(3)})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Commit(tok); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	_, rec, err = Open(testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 2 {
		t.Fatalf("committed batch lost: recovered %d records, want 2", len(rec.Records))
	}
}

func TestCommitLeaderCoversEarlierWrites(t *testing.T) {
	fs := faultinject.NewMemFS()
	l, _, err := Open(testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	t1, err := l.AppendAllBuffered([]Record{mkRating(0)})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := l.AppendAllBuffered([]Record{mkRating(1)})
	if err != nil {
		t.Fatal(err)
	}
	syncs := countSyncs(fs)
	if err := l.Commit(t2); err != nil {
		t.Fatal(err)
	}
	if *syncs != 1 {
		t.Fatalf("leader commit ran %d fsyncs, want 1", *syncs)
	}
	// The leader's fsync covered t1's earlier write; its commit must
	// not touch the file again.
	if err := l.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if *syncs != 1 {
		t.Fatalf("follower commit ran %d extra fsyncs, want 0", *syncs-1)
	}
}

func TestCommitNoopOutsideSyncAlways(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncInterval, SyncNever} {
		fs := faultinject.NewMemFS()
		opts := testOptions(fs)
		opts.Policy = policy
		l, _, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		tok, err := l.AppendAllBuffered([]Record{mkRating(0)})
		if err != nil {
			t.Fatal(err)
		}
		syncs := countSyncs(fs)
		if err := l.Commit(tok); err != nil {
			t.Fatal(err)
		}
		if *syncs != 0 {
			t.Fatalf("policy %v: commit ran %d fsyncs, want 0", policy, *syncs)
		}
	}
}

func TestConcurrentCommitsAllDurable(t *testing.T) {
	fs := faultinject.NewMemFS()
	l, _, err := Open(testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				tok, err := l.AppendAllBuffered([]Record{mkRating(w*100 + i)})
				if err == nil {
					err = l.Commit(tok)
				}
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	fs.Crash()
	_, rec, err := Open(testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != writers*20 {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), writers*20)
	}
}

func TestCommitReportsRotationSyncLoss(t *testing.T) {
	fs := faultinject.NewMemFS()
	opts := testOptions(fs)
	opts.SegmentBytes = 1 // every append lands in a fresh segment
	l, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := l.AppendAllBuffered([]Record{mkRating(0)})
	if err != nil {
		t.Fatal(err)
	}
	// Fail the rotation's best-effort sync of the outgoing dirty
	// segment: t1's record may now be lost, and its commit must say so
	// instead of acknowledging durability.
	fired := false
	fs.SetInjector(func(op faultinject.Op) *faultinject.Fault {
		if op.Kind == "sync" && !fired {
			fired = true
			return &faultinject.Fault{Err: errors.New("sync blown")}
		}
		return nil
	})
	t2, err := l.AppendAllBuffered([]Record{mkRating(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(t1); err == nil {
		t.Fatal("commit of batch lost in failed rotation sync returned nil")
	}
	// The later batch was written after the failed rotation; its
	// commit fsyncs the new segment and succeeds.
	if err := l.Commit(t2); err != nil {
		t.Fatalf("commit of post-rotation batch: %v", err)
	}
}
