package wal

import (
	"repro/internal/telemetry"
)

// Metrics is the write-ahead log's telemetry surface. A nil *Metrics
// (the default) disables instrumentation entirely; individual nil
// fields are also fine, since telemetry metrics no-op when nil.
type Metrics struct {
	// AppendSeconds times each Append/AppendAll frame write (excluding
	// the fsync, which FsyncSeconds owns).
	AppendSeconds *telemetry.Histogram
	// FsyncSeconds times every fsync of the active segment, whichever
	// policy triggered it.
	FsyncSeconds *telemetry.Histogram
	// SnapshotSeconds times whole snapshot+compaction passes.
	SnapshotSeconds *telemetry.Histogram
	// AppendedRecords counts records acknowledged by Append/AppendAll.
	AppendedRecords *telemetry.Counter
	// AppendErrors counts failed appends (records the caller must
	// treat as not logged).
	AppendErrors *telemetry.Counter
	// Rotations counts segment rotations.
	Rotations *telemetry.Counter
	// SegmentSeq tracks the index of the segment currently appended to.
	SegmentSeq *telemetry.Gauge
	// SegmentBytes tracks the active segment's size.
	SegmentBytes *telemetry.Gauge
	// RecoveredRecords counts records read back during Open.
	RecoveredRecords *telemetry.Counter
	// TornSegments counts segments truncated during recovery.
	TornSegments *telemetry.Counter
	// ReplayedRecords counts records applied by Replay; incremented by
	// the recovery driver (see cmd/ratingd), not by this package.
	ReplayedRecords *telemetry.Counter
}

// NewMetrics registers the WAL metric family on r. A nil registry
// yields a Metrics whose fields are all nil — still safe to use.
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		AppendSeconds:    r.Histogram("wal_append_seconds", "WAL frame write latency (excluding fsync)", nil),
		FsyncSeconds:     r.Histogram("wal_fsync_seconds", "WAL segment fsync latency", nil),
		SnapshotSeconds:  r.Histogram("wal_snapshot_seconds", "WAL snapshot + compaction pass latency", nil),
		AppendedRecords:  r.Counter("wal_appended_records_total", "records acknowledged by the WAL"),
		AppendErrors:     r.Counter("wal_append_errors_total", "failed WAL appends"),
		Rotations:        r.Counter("wal_segment_rotations_total", "WAL segment rotations"),
		SegmentSeq:       r.Gauge("wal_segment_seq", "index of the segment currently appended to"),
		SegmentBytes:     r.Gauge("wal_segment_bytes", "size of the active WAL segment"),
		RecoveredRecords: r.Counter("wal_recovered_records_total", "records read back during recovery"),
		TornSegments:     r.Counter("wal_torn_segments_total", "segments truncated during recovery"),
		ReplayedRecords:  r.Counter("wal_replayed_records_total", "recovered records applied to the system"),
	}
}

// The nil-safe accessors below keep call sites in wal.go to one line
// even though the whole *Metrics may be nil.

func (m *Metrics) startAppend() telemetry.Span {
	if m == nil {
		return telemetry.Span{}
	}
	return m.AppendSeconds.Start()
}

func (m *Metrics) startFsync() telemetry.Span {
	if m == nil {
		return telemetry.Span{}
	}
	return m.FsyncSeconds.Start()
}

func (m *Metrics) startSnapshot() telemetry.Span {
	if m == nil {
		return telemetry.Span{}
	}
	return m.SnapshotSeconds.Start()
}

func (m *Metrics) appended(n int) {
	if m != nil {
		m.AppendedRecords.Add(uint64(n))
	}
}

func (m *Metrics) appendFailed() {
	if m != nil {
		m.AppendErrors.Inc()
	}
}

func (m *Metrics) rotated() {
	if m != nil {
		m.Rotations.Inc()
	}
}

func (m *Metrics) segment(seq int, size int64) {
	if m != nil {
		m.SegmentSeq.Set(float64(seq))
		m.SegmentBytes.Set(float64(size))
	}
}

func (m *Metrics) recovered(records, torn int) {
	if m != nil {
		m.RecoveredRecords.Add(uint64(records))
		m.TornSegments.Add(uint64(torn))
	}
}
