package wal

import (
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/rating"
	"repro/internal/telemetry"
)

// TestMetricsCountAppendsAndRecovery appends through an instrumented
// log, crashes it, and checks the append/fsync/recovery counters.
func TestMetricsCountAppendsAndRecovery(t *testing.T) {
	fs := faultinject.NewMemFS()
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)

	log, rec, err := Open(Options{Dir: "wal", FS: fs, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %d records", len(rec.Records))
	}
	r := rating.Rating{Rater: 1, Object: 2, Value: 0.5, Time: 3}
	if err := log.Append(RatingRecord(r)); err != nil {
		t.Fatal(err)
	}
	if err := log.AppendAll([]Record{RatingRecord(r), ProcessRecord(0, 30)}); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	if got := m.AppendedRecords.Value(); got != 3 {
		t.Fatalf("appended = %d, want 3", got)
	}
	if m.AppendSeconds.Count() != 2 { // one Append + one AppendAll write
		t.Fatalf("append latencies = %d, want 2", m.AppendSeconds.Count())
	}
	if m.FsyncSeconds.Count() == 0 {
		t.Fatal("no fsync observed under SyncAlways")
	}

	// Reopen with fresh metrics: recovery reads all three records back.
	reg2 := telemetry.NewRegistry()
	m2 := NewMetrics(reg2)
	log2, rec2, err := Open(Options{Dir: "wal", FS: fs, Metrics: m2})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if len(rec2.Records) != 3 {
		t.Fatalf("recovered %d records, want 3", len(rec2.Records))
	}
	if got := m2.RecoveredRecords.Value(); got != 3 {
		t.Fatalf("recovered counter = %d, want 3", got)
	}
	if got := m2.SegmentSeq.Value(); got != float64(log2.SegmentSeq()) {
		t.Fatalf("segment gauge = %g, want %d", got, log2.SegmentSeq())
	}

	var sb strings.Builder
	if err := reg2.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"wal_recovered_records_total 3", "wal_segment_seq"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMetricsCountTornRecovery corrupts a tail and checks the torn
// counter.
func TestMetricsCountTornRecovery(t *testing.T) {
	fs := faultinject.NewMemFS()
	log, _, err := Open(Options{Dir: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	r := rating.Rating{Rater: 1, Object: 2, Value: 0.5, Time: 3}
	for i := 0; i < 4; i++ {
		if err := log.Append(RatingRecord(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final frame: chop the last 5 bytes of the segment.
	name := "wal/" + segmentName(log.SegmentSeq())
	data, err := readFile(fs, name)
	if err != nil {
		t.Fatal(err)
	}
	if err := truncateFile(fs, name, int64(len(data)-5)); err != nil {
		t.Fatal(err)
	}

	m := NewMetrics(telemetry.NewRegistry())
	log2, rec, err := Open(Options{Dir: "wal", FS: fs, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if !rec.Torn || len(rec.Records) != 3 {
		t.Fatalf("recovery = torn:%v records:%d, want torn with 3", rec.Torn, len(rec.Records))
	}
	if got := m.TornSegments.Value(); got != 1 {
		t.Fatalf("torn counter = %d, want 1", got)
	}
}
