package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path"
)

// Cursor addresses a frame boundary in the segmented log: byte offset
// Off of segment Seg. Valid cursors come from LatestSnapshot (the
// covering segment at offset 0), Tail, or a previous ReadFrom — never
// from arithmetic, because offsets are only meaningful on frame
// boundaries.
type Cursor struct {
	Seg int
	Off int64
}

// ErrSegmentGone reports that a cursor's segment has been compacted
// away (or never existed in this log's history), so the reader cannot
// resume frame-by-frame and must re-bootstrap from the latest
// snapshot. Returned wrapped; test with errors.Is.
var ErrSegmentGone = errors.New("wal: segment gone; re-bootstrap from snapshot")

// ReadFrom decodes verified frames starting at cur and returns them
// with the cursor just past the last returned frame. It is the
// replication tail reader: safe to call concurrently with appends,
// and it never returns bytes that haven't passed the CRC.
//
// Batching contract: TypeBarrier and TypeProcess records are returned
// alone (a batch of exactly one), so a follower can apply every
// rating before a window and never a rating past one. Plain rating
// batches are capped at maxRecords (<= 0 means no cap).
//
// Tail contract: a torn or corrupt frame in the live segment is an
// append in flight (or a failed append about to be sealed and rotated
// past) — ReadFrom stops before it and returns cleanly, so a poller
// blocks at the tear rather than emitting garbage, and resumes once
// the next successful append lands. In a sealed segment a tear is
// permanent and terminal (the append discipline damages only segment
// ends), so the reader skips to the next segment.
//
// A cursor whose segment was compacted away — or that is ahead of the
// live segment, i.e. from some other log's history — fails with
// ErrSegmentGone.
func (l *Log) ReadFrom(cur Cursor, maxRecords int) ([]Record, Cursor, error) {
	if maxRecords <= 0 {
		maxRecords = 1 << 30
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, cur, ErrClosed
	}
	liveSeq := l.seq
	fsys, dir := l.opts.FS, l.opts.Dir
	l.mu.Unlock()

	if cur.Seg > liveSeq || cur.Off < 0 {
		return nil, cur, fmt.Errorf("%w (cursor %d/%d vs live segment %d)", ErrSegmentGone, cur.Seg, cur.Off, liveSeq)
	}
	var out []Record
	for {
		data, err := readFile(fsys, path.Join(dir, segmentName(cur.Seg)))
		if err != nil {
			if os.IsNotExist(err) && cur.Seg < liveSeq {
				return out, cur, fmt.Errorf("%w (segment %d compacted)", ErrSegmentGone, cur.Seg)
			}
			return out, cur, err
		}
		if cur.Off > int64(len(data)) {
			if cur.Seg < liveSeq {
				// A verified cursor can't point past a sealed segment's
				// end; this log's history diverged from the cursor's.
				return out, cur, fmt.Errorf("%w (cursor %d/%d past sealed end %d)", ErrSegmentGone, cur.Seg, cur.Off, len(data))
			}
			// A failed append is being truncated back; retry later.
			return out, cur, nil
		}
		for cur.Off < int64(len(data)) && len(out) < maxRecords {
			rec, next, perr := parseFrame(data, int(cur.Off))
			if perr != nil {
				if cur.Seg >= liveSeq {
					return out, cur, nil // live tail tear: block before it
				}
				break // sealed tear: terminal; the rest is garbage
			}
			if rec.Type == TypeBarrier || rec.Type == TypeProcess {
				if len(out) > 0 {
					return out, cur, nil // the window starts its own batch
				}
				return []Record{rec}, Cursor{Seg: cur.Seg, Off: int64(next)}, nil
			}
			out = append(out, rec)
			cur.Off = int64(next)
		}
		if len(out) >= maxRecords {
			return out, cur, nil
		}
		if cur.Seg >= liveSeq {
			return out, cur, nil
		}
		// Sealed segment fully consumed (or torn past recovery): roll
		// into the next one.
		cur = Cursor{Seg: cur.Seg + 1}
	}
}

// parseFrame decodes the single frame at data[off:] and returns the
// record plus the offset just past it. The error describes a torn or
// corrupt frame, with the offset unchanged.
func parseFrame(data []byte, off int) (Record, int, error) {
	if len(data)-off < frameHeader {
		return Record{}, off, fmt.Errorf("torn frame header (%d trailing bytes)", len(data)-off)
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	crc := binary.LittleEndian.Uint32(data[off+4:])
	if n == 0 || n > maxPayload {
		return Record{}, off, fmt.Errorf("implausible frame length %d", n)
	}
	if len(data)-off-frameHeader < n {
		return Record{}, off, fmt.Errorf("torn frame payload (want %d, have %d)", n, len(data)-off-frameHeader)
	}
	payload := data[off+frameHeader : off+frameHeader+n]
	if crc32.Checksum(payload, crcTable) != crc {
		return Record{}, off, errors.New("frame checksum mismatch")
	}
	rec, derr := decodeRecord(payload)
	if derr != nil {
		return Record{}, off, derr
	}
	return rec, off + frameHeader + n, nil
}
