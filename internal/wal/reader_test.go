package wal

import (
	"errors"
	"io"
	"os"
	"path"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/rating"
)

func testRating(i int) rating.Rating {
	return rating.Rating{Rater: rating.RaterID(i), Object: rating.ObjectID(i % 3), Value: float64(i%5) + 1, Time: float64(i)}
}

func openTestLog(t *testing.T, fsys faultinject.FS, segBytes int64) *Log {
	t.Helper()
	l, _, err := Open(Options{Dir: "wal", FS: fsys, Policy: SyncNever, SegmentBytes: segBytes})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func readAllFrom(t *testing.T, l *Log, cur Cursor) ([]Record, Cursor) {
	t.Helper()
	var out []Record
	for {
		recs, next, err := l.ReadFrom(cur, 0)
		if err != nil {
			t.Fatalf("ReadFrom(%+v): %v", cur, err)
		}
		out = append(out, recs...)
		if len(recs) == 0 && next == cur {
			return out, cur
		}
		cur = next
	}
}

// A reader positioned at a torn final record must block (emit
// nothing), then resume cleanly once the next successful append lands
// in a fresh segment.
func TestReadFromTornTailBlocks(t *testing.T) {
	fsys := faultinject.NewMemFS()
	l := openTestLog(t, fsys, 1<<20)
	for i := 0; i < 5; i++ {
		if err := l.Append(RatingRecord(testRating(i))); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	recs, cur := readAllFrom(t, l, Cursor{Seg: l.SegmentSeq()})
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	if cur != l.Tail() {
		t.Fatalf("cursor %+v, want tail %+v", cur, l.Tail())
	}

	// Tear the live tail by hand: half a frame of garbage.
	name := path.Join("wal", segmentName(cur.Seg))
	f, err := fsys.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	if _, err := f.Write([]byte{0x21, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatalf("tear: %v", err)
	}
	f.Close()

	// The reader must stop before the tear, not emit garbage.
	for i := 0; i < 3; i++ {
		recs, next, err := l.ReadFrom(cur, 0)
		if err != nil {
			t.Fatalf("ReadFrom at tear: %v", err)
		}
		if len(recs) != 0 {
			t.Fatalf("reader emitted %d records from a torn tail", len(recs))
		}
		if next != cur {
			t.Fatalf("cursor advanced into tear: %+v", next)
		}
	}

	// The writer's own discipline would seal+rotate after a failed
	// append; emulate the aftermath by sealing the damaged segment so
	// the next append opens a fresh one.
	l.mu.Lock()
	l.sealed = true
	l.curSize += 6
	l.mu.Unlock()
	if err := l.Append(RatingRecord(testRating(99))); err != nil {
		t.Fatalf("append after seal: %v", err)
	}

	// Resume: the sealed segment's tear is now terminal, the reader
	// skips past it into the new segment and yields the new record.
	recs, next := readAllFrom(t, l, cur)
	if len(recs) != 1 || recs[0].Rating.Rater != 99 {
		t.Fatalf("after resume got %+v, want the single post-tear record", recs)
	}
	if next.Seg != l.SegmentSeq() {
		t.Fatalf("cursor segment %d, want live %d", next.Seg, l.SegmentSeq())
	}
}

// A reader whose cursor segment was compacted away must get a typed
// ErrSegmentGone directing it to snapshot re-bootstrap.
func TestReadFromRotatedAwaySegmentGone(t *testing.T) {
	fsys := faultinject.NewMemFS()
	l := openTestLog(t, fsys, 1<<20)
	for i := 0; i < 4; i++ {
		if err := l.Append(RatingRecord(testRating(i))); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	old := Cursor{Seg: l.SegmentSeq()}
	if err := l.Snapshot(func(w io.Writer) error { _, err := w.Write([]byte(`{}`)); return err }); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	_, _, err := l.ReadFrom(old, 0)
	if !errors.Is(err, ErrSegmentGone) {
		t.Fatalf("read of compacted segment: err=%v, want ErrSegmentGone", err)
	}
	// Same for a cursor ahead of the live segment: some other log's
	// history, only a re-bootstrap can reconcile it.
	_, _, err = l.ReadFrom(Cursor{Seg: l.SegmentSeq() + 7}, 0)
	if !errors.Is(err, ErrSegmentGone) {
		t.Fatalf("read ahead of live: err=%v, want ErrSegmentGone", err)
	}
}

// Barriers and process windows are returned alone, so a follower can
// align windows across shards without splitting a batch itself.
func TestReadFromBarrierBatching(t *testing.T) {
	fsys := faultinject.NewMemFS()
	l := openTestLog(t, fsys, 1<<20)
	start := Cursor{Seg: l.SegmentSeq()}
	for i := 0; i < 3; i++ {
		if err := l.Append(RatingRecord(testRating(i))); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Append(BarrierRecord(1, 0, 10)); err != nil {
		t.Fatalf("append barrier: %v", err)
	}
	for i := 3; i < 5; i++ {
		if err := l.Append(RatingRecord(testRating(i))); err != nil {
			t.Fatalf("append: %v", err)
		}
	}

	recs, cur, err := l.ReadFrom(start, 0)
	if err != nil || len(recs) != 3 || recs[0].Type != TypeRating {
		t.Fatalf("batch 1: %d recs err=%v, want 3 ratings", len(recs), err)
	}
	recs, cur, err = l.ReadFrom(cur, 0)
	if err != nil || len(recs) != 1 || recs[0].Type != TypeBarrier || recs[0].Seq != 1 {
		t.Fatalf("batch 2: %+v err=%v, want lone barrier seq 1", recs, err)
	}
	recs, _, err = l.ReadFrom(cur, 0)
	if err != nil || len(recs) != 2 {
		t.Fatalf("batch 3: %d recs err=%v, want 2 ratings", len(recs), err)
	}
}

// ReadFrom must follow rotation across segment boundaries and respect
// maxRecords.
func TestReadFromAcrossRotation(t *testing.T) {
	fsys := faultinject.NewMemFS()
	l := openTestLog(t, fsys, 64) // tiny segments force rotation
	start := Cursor{Seg: l.SegmentSeq()}
	const n = 20
	for i := 0; i < n; i++ {
		if err := l.Append(RatingRecord(testRating(i))); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if l.SegmentSeq() == start.Seg {
		t.Fatal("expected rotation with 64-byte segments")
	}
	var got []Record
	cur := start
	for len(got) < n {
		recs, next, err := l.ReadFrom(cur, 3)
		if err != nil {
			t.Fatalf("ReadFrom: %v", err)
		}
		if len(recs) > 3 {
			t.Fatalf("maxRecords exceeded: %d", len(recs))
		}
		if len(recs) == 0 && next == cur {
			t.Fatalf("stalled at %+v with %d/%d records", cur, len(got), n)
		}
		got = append(got, recs...)
		cur = next
	}
	for i, r := range got {
		if r.Rating.Rater != rating.RaterID(i) {
			t.Fatalf("record %d out of order: %+v", i, r)
		}
	}
}
