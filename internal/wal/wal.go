// Package wal is the write-ahead log that makes ratingd crash-safe.
// Every accepted mutation — a rating submission or a maintenance
// window — is framed, checksummed and appended to a segmented
// append-only log before it is applied in memory; recovery loads the
// latest snapshot and replays the log tail, so the daemon's state is
// a pure function of what the log acknowledged.
//
// On-disk layout (one directory):
//
//	wal-00000042.log    segment 42: length-prefixed CRC32C frames
//	snap-00000043.json  snapshot covering every segment < 43
//
// Frame format, little-endian:
//
//	uint32 payload length | uint32 CRC32C(payload) | payload
//
// The payload is a one-byte record type followed by fixed-width
// fields. Frames are written with a single Write call, so a crash can
// only tear the final frame of a segment; recovery truncates the tear
// and continues (never refusing to start). After a failed append the
// log seals the damaged segment and rotates, preserving the invariant
// that any segment is torn only at its very end.
//
// The fsync policy is configurable: SyncAlways fsyncs every append
// (durable on acknowledge), SyncInterval leaves fsync to a caller-run
// ticker calling Sync, SyncNever leaves durability to the OS.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/rating"
)

// RecordType discriminates log records.
type RecordType uint8

const (
	// TypeRating is one accepted rating.
	TypeRating RecordType = 1
	// TypeProcess is one maintenance window [Start, End).
	TypeProcess RecordType = 2
	// TypeBarrier is a maintenance window broadcast to every shard log
	// of a sharded deployment. The sequence number is the cross-log
	// alignment point: recovery merges per-shard tails by pairing
	// barriers with equal Seq, so a crash mid-broadcast (a barrier
	// present in some logs but not others) is detectable.
	TypeBarrier RecordType = 3
)

// Record is one logical log entry.
type Record struct {
	Type       RecordType
	Rating     rating.Rating // valid when Type == TypeRating
	Start, End float64       // valid when Type == TypeProcess or TypeBarrier
	Seq        uint64        // valid when Type == TypeBarrier
}

// RatingRecord wraps a rating as a log record.
func RatingRecord(r rating.Rating) Record {
	return Record{Type: TypeRating, Rating: r}
}

// ProcessRecord wraps a maintenance window as a log record.
func ProcessRecord(start, end float64) Record {
	return Record{Type: TypeProcess, Start: start, End: end}
}

// BarrierRecord wraps a maintenance window as a shard-log barrier with
// its cross-log sequence number.
func BarrierRecord(seq uint64, start, end float64) Record {
	return Record{Type: TypeBarrier, Seq: seq, Start: start, End: end}
}

// SyncPolicy selects when appends are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs inside every Append: a nil return means the
	// record is on stable storage.
	SyncAlways SyncPolicy = iota
	// SyncInterval never fsyncs inside Append; the owner calls Sync
	// on its own schedule and bounds the loss window by it.
	SyncInterval
	// SyncNever never fsyncs; crashes lose whatever the OS had not
	// written back. Useful for benchmarks and tests.
	SyncNever
)

// Options configures Open.
type Options struct {
	// Dir is the log directory, created if missing.
	Dir string
	// FS is the filesystem seam; nil means the real filesystem.
	FS faultinject.FS
	// Policy selects the fsync policy; the zero value is SyncAlways.
	Policy SyncPolicy
	// SegmentBytes rotates segments once they reach this size.
	// Zero means 4 MiB.
	SegmentBytes int64
	// Warnf receives recovery and degradation warnings; nil discards.
	Warnf func(format string, args ...any)
	// Metrics receives telemetry (latency histograms, counters,
	// segment gauges); nil disables instrumentation.
	Metrics *Metrics
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = faultinject.OS()
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.Warnf == nil {
		o.Warnf = func(string, ...any) {}
	}
	return o
}

// Recovery reports what Open reconstructed.
type Recovery struct {
	// Snapshot is the latest durable snapshot's bytes, nil if none.
	Snapshot []byte
	// Records is the log tail to replay on top of the snapshot.
	Records []Record
	// Torn reports that at least one torn or corrupt frame was
	// truncated away during recovery.
	Torn bool
	// TornFiles lists the segments that were truncated.
	TornFiles []string
	// Segments is how many segment files were replayed.
	Segments int
}

// Log is an open write-ahead log. Its methods are safe for concurrent
// use, but callers coordinating the log with in-memory state (append
// then apply) need their own mutex around the pair.
type Log struct {
	opts Options

	mu       sync.Mutex
	seq      int // current segment index
	cur      faultinject.File
	curSize  int64
	dirty    bool // bytes written since the last successful sync
	sealed   bool // current segment had a failed append; rotate before reuse
	closed   bool
	buf      []byte
	writeGen uint64 // generation of the latest buffered append (under mu)

	// Group-commit state for AppendAllBuffered/Commit. syncMu elects
	// one fsync leader at a time; syncedGen is the highest write
	// generation known durable (so followers whose generation a
	// leader's fsync already covered return without touching the file);
	// failedGen marks generations that may have been lost when a
	// rotation's best-effort sync of the outgoing segment failed.
	syncMu    sync.Mutex
	syncedGen atomic.Uint64
	failedGen atomic.Uint64

	// appended counts records written by this process (recovery replay
	// excluded). Snapshot footers record it as the follower lag
	// baseline, so it is only comparable within one log lifetime.
	appended atomic.Uint64
}

const (
	frameHeader   = 8
	maxPayload    = 1 << 16 // sanity bound; real payloads are ≤ 33 bytes
	segmentPrefix = "wal-"
	segmentSuffix = ".log"
	snapPrefix    = "snap-"
	snapSuffix    = ".json"
	tmpSuffix     = ".tmp"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func segmentName(seq int) string { return fmt.Sprintf("%s%08d%s", segmentPrefix, seq, segmentSuffix) }
func snapName(seq int) string    { return fmt.Sprintf("%s%08d%s", snapPrefix, seq, snapSuffix) }

func parseSeq(name, prefix, suffix string) (int, bool) {
	if len(name) != len(prefix)+8+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	seq := 0
	for _, c := range name[len(prefix) : len(prefix)+8] {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + int(c-'0')
	}
	return seq, true
}

// Open recovers the log in opts.Dir and returns it ready for appends,
// along with what it recovered. Open never fails on torn or corrupt
// frames — it truncates them with a warning; it fails only on I/O
// errors that make the directory unusable.
func Open(opts Options) (*Log, *Recovery, error) {
	opts = opts.withDefaults()
	fsys := opts.FS
	if err := fsys.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: mkdir %s: %w", opts.Dir, err)
	}
	names, err := fsys.ReadDir(opts.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: readdir %s: %w", opts.Dir, err)
	}

	var segSeqs, snapSeqs []int
	for _, name := range names {
		if seq, ok := parseSeq(name, segmentPrefix, segmentSuffix); ok {
			segSeqs = append(segSeqs, seq)
			continue
		}
		if seq, ok := parseSeq(name, snapPrefix, snapSuffix); ok {
			snapSeqs = append(snapSeqs, seq)
			continue
		}
		// Leftover temp files from a crashed snapshot write are dead.
		if len(name) > len(tmpSuffix) && name[len(name)-len(tmpSuffix):] == tmpSuffix {
			opts.Warnf("wal: removing orphan temp file %s", name)
			_ = fsys.Remove(path.Join(opts.Dir, name))
		}
	}
	sortInts(segSeqs)
	sortInts(snapSeqs)

	rec := &Recovery{}

	// Latest readable snapshot wins; unreadable ones fall back.
	snapSeq := 0
	for i := len(snapSeqs) - 1; i >= 0; i-- {
		data, err := readFile(fsys, path.Join(opts.Dir, snapName(snapSeqs[i])))
		if err != nil || len(data) == 0 {
			// An empty snapshot is the signature of a rename whose
			// content never reached disk; treat it like a read error.
			opts.Warnf("wal: snapshot %s unreadable (%v, %d bytes); falling back",
				snapName(snapSeqs[i]), err, len(data))
			continue
		}
		content, _, _, ferr := SplitSnapshotFooter(data)
		if ferr != nil || len(content) == 0 {
			// A corrupt footer means the content can't be trusted either
			// — the CRC binds them together. Fall back like a torn write.
			opts.Warnf("wal: snapshot %s failed verification (%v); falling back",
				snapName(snapSeqs[i]), ferr)
			continue
		}
		rec.Snapshot = content
		snapSeq = snapSeqs[i]
		break
	}
	// Older snapshots are superseded; covered segments are dead.
	for _, s := range snapSeqs {
		if s < snapSeq {
			_ = fsys.Remove(path.Join(opts.Dir, snapName(s)))
		}
	}

	lastSize := int64(-1)
	lastSeq := snapSeq - 1 // so an empty dir starts at segment snapSeq
	for _, seq := range segSeqs {
		name := segmentName(seq)
		full := path.Join(opts.Dir, name)
		if seq < snapSeq {
			opts.Warnf("wal: removing segment %s covered by snapshot %d", name, snapSeq)
			_ = fsys.Remove(full)
			continue
		}
		data, err := readFile(fsys, full)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: read segment %s: %w", name, err)
		}
		recs, good, perr := parseFrames(data)
		rec.Records = append(rec.Records, recs...)
		rec.Segments++
		lastSeq, lastSize = seq, int64(len(data))
		if perr != nil {
			// Torn tail: truncate to the last good frame and go on.
			// Append discipline guarantees damage only at segment end,
			// so later segments are still replayable.
			opts.Warnf("wal: %s: %v at offset %d of %d; truncating and continuing",
				name, perr, good, len(data))
			rec.Torn = true
			rec.TornFiles = append(rec.TornFiles, name)
			if err := truncateFile(fsys, full, int64(good)); err != nil {
				return nil, nil, fmt.Errorf("wal: truncate torn %s: %w", name, err)
			}
			lastSize = int64(good)
		}
	}
	_ = fsys.SyncDir(opts.Dir)

	opts.Metrics.recovered(len(rec.Records), len(rec.TornFiles))

	l := &Log{opts: opts, seq: lastSeq, curSize: lastSize}
	// Append into the last segment if it exists and has room,
	// otherwise start a fresh one.
	if lastSize < 0 || lastSize >= opts.SegmentBytes {
		l.seq++
		l.curSize = 0
	}
	if err := l.openSegment(); err != nil {
		return nil, nil, err
	}
	return l, rec, nil
}

func readFile(fsys faultinject.FS, name string) ([]byte, error) {
	f, err := fsys.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

func truncateFile(fsys faultinject.FS, name string, size int64) error {
	f, err := fsys.OpenFile(name, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// openSegment opens (creating if needed) the current segment for
// appending and makes its directory entry durable.
func (l *Log) openSegment() error {
	name := path.Join(l.opts.Dir, segmentName(l.seq))
	f, err := l.opts.FS.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment %d: %w", l.seq, err)
	}
	if err := l.opts.FS.SyncDir(l.opts.Dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync dir for segment %d: %w", l.seq, err)
	}
	l.cur = f
	l.sealed = false
	l.dirty = false
	l.opts.Metrics.segment(l.seq, l.curSize)
	return nil
}

// rotate seals the current segment and opens the next one.
func (l *Log) rotate() error {
	if l.cur != nil {
		if l.dirty {
			if err := l.cur.Sync(); err != nil {
				// The outgoing segment's unsynced tail may be lost. For
				// the synchronous append paths nothing was acknowledged
				// yet, but buffered appends awaiting Commit must learn
				// their records are gone: poison every generation
				// written so far.
				l.opts.Warnf("wal: sync on rotate: %v", err)
				l.failedGen.Store(l.writeGen)
			} else {
				l.dirty = false
			}
		}
		_ = l.cur.Close()
		l.cur = nil
	}
	l.seq++
	l.curSize = 0
	l.opts.Metrics.rotated()
	return l.openSegment()
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

// Append frames rec and writes it to the log. Under SyncAlways, a nil
// return means the record is durable. On error the record must be
// treated as not logged; the log itself remains usable (the damaged
// segment is sealed and the next append rotates past it).
func (l *Log) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.cur == nil || l.sealed || l.curSize >= l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	l.buf = appendFrame(l.buf[:0], rec)
	sp := l.opts.Metrics.startAppend()
	n, err := l.cur.Write(l.buf)
	l.curSize += int64(n)
	if err != nil {
		// The segment may now end in a torn frame. Trim it back if we
		// can; either way, seal it so no frame is ever written after
		// damage — recovery relies on tears being terminal.
		want := l.curSize - int64(n)
		if terr := l.cur.Truncate(want); terr == nil {
			l.curSize = want
		} else {
			l.sealed = true
		}
		l.opts.Metrics.appendFailed()
		return fmt.Errorf("wal: append: %w", err)
	}
	sp.End()
	l.dirty = true
	l.appended.Add(1)
	l.opts.Metrics.segment(l.seq, l.curSize)
	if l.opts.Policy == SyncAlways {
		if err := l.syncLocked(); err != nil {
			l.opts.Metrics.appendFailed()
			return err
		}
	}
	l.opts.Metrics.appended(1)
	return nil
}

// AppendAll frames every record and writes them in a single Write, so
// the batch is all-or-nothing under the same truncate-or-seal
// discipline as Append: on error none of the records may be treated
// as logged. Under SyncAlways, a nil return means all of them are
// durable.
func (l *Log) AppendAll(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.cur == nil || l.sealed || l.curSize >= l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	l.buf = l.buf[:0]
	for _, rec := range recs {
		l.buf = appendFrame(l.buf, rec)
	}
	sp := l.opts.Metrics.startAppend()
	n, err := l.cur.Write(l.buf)
	l.curSize += int64(n)
	if err != nil {
		want := l.curSize - int64(n)
		if terr := l.cur.Truncate(want); terr == nil {
			l.curSize = want
		} else {
			l.sealed = true
		}
		l.opts.Metrics.appendFailed()
		return fmt.Errorf("wal: append batch: %w", err)
	}
	sp.End()
	l.dirty = true
	l.appended.Add(uint64(len(recs)))
	l.opts.Metrics.segment(l.seq, l.curSize)
	if l.opts.Policy == SyncAlways {
		if err := l.syncLocked(); err != nil {
			l.opts.Metrics.appendFailed()
			return err
		}
	}
	l.opts.Metrics.appended(len(recs))
	return nil
}

// SyncToken identifies a buffered append for Commit. The zero token
// commits trivially.
type SyncToken struct {
	gen uint64
}

// AppendAllBuffered frames every record and writes them in a single
// Write like AppendAll, but never fsyncs — even under SyncAlways —
// and instead returns a token for Commit. Splitting the write from
// the sync is what enables group commit: several batches can be
// written back to back and made durable by one fsync, whoever's
// Commit runs first acting as the leader for all of them. On error
// none of the records may be treated as logged.
func (l *Log) AppendAllBuffered(recs []Record) (SyncToken, error) {
	if len(recs) == 0 {
		return SyncToken{}, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return SyncToken{}, ErrClosed
	}
	if l.cur == nil || l.sealed || l.curSize >= l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			return SyncToken{}, err
		}
	}
	l.buf = l.buf[:0]
	for _, rec := range recs {
		l.buf = appendFrame(l.buf, rec)
	}
	sp := l.opts.Metrics.startAppend()
	n, err := l.cur.Write(l.buf)
	l.curSize += int64(n)
	if err != nil {
		want := l.curSize - int64(n)
		if terr := l.cur.Truncate(want); terr == nil {
			l.curSize = want
		} else {
			l.sealed = true
		}
		l.opts.Metrics.appendFailed()
		return SyncToken{}, fmt.Errorf("wal: append batch: %w", err)
	}
	sp.End()
	l.dirty = true
	l.writeGen++
	l.appended.Add(uint64(len(recs)))
	l.opts.Metrics.segment(l.seq, l.curSize)
	l.opts.Metrics.appended(len(recs))
	return SyncToken{gen: l.writeGen}, nil
}

// Commit makes a buffered append durable under SyncAlways: a nil
// return means the token's records are on stable storage. Under
// SyncInterval and SyncNever it is a no-op, preserving those
// policies' loss windows. Concurrent commits elect one fsync leader;
// the leader's single fsync covers every write that preceded it, and
// the followers observe that and return without touching the file.
func (l *Log) Commit(t SyncToken) error {
	if t.gen == 0 || l.opts.Policy != SyncAlways {
		return nil
	}
	// Fast path: a leader's fsync already covered this generation.
	// Lost generations are checked first so they stay errors even
	// after syncedGen advances past them.
	if l.failedGen.Load() >= t.gen {
		return fmt.Errorf("wal: commit: records lost in failed rotation sync")
	}
	if l.syncedGen.Load() >= t.gen {
		return nil
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.failedGen.Load() >= t.gen {
		return fmt.Errorf("wal: commit: records lost in failed rotation sync")
	}
	if l.syncedGen.Load() >= t.gen {
		return nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	cover := l.writeGen
	failed := l.failedGen.Load()
	err := l.syncLocked()
	l.mu.Unlock()
	if err != nil {
		return err
	}
	if failed >= t.gen {
		return fmt.Errorf("wal: commit: records lost in failed rotation sync")
	}
	l.syncedGen.Store(cover)
	return nil
}

// Sync fsyncs any unsynced appends.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty || l.cur == nil {
		return nil
	}
	sp := l.opts.Metrics.startFsync()
	if err := l.cur.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	sp.End()
	l.dirty = false
	return nil
}

// Snapshot makes the state written by write the log's new baseline:
// it seals the current segment, writes the snapshot atomically (temp
// file, fsync, rename, dir fsync), then drops every segment and older
// snapshot the new one covers. The caller must guarantee that the
// state write reflects exactly the records appended so far — i.e.
// hold whatever lock orders appends against state mutations.
//
// On error the log stays usable and the previous snapshot (if any)
// remains the recovery baseline.
func (l *Log) Snapshot(write func(io.Writer) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	sp := l.opts.Metrics.startSnapshot()
	defer sp.End()
	// Seal the tail so the snapshot covers segments < cover and the
	// next append lands in segment `cover`.
	if err := l.rotate(); err != nil {
		return err
	}
	cover := l.seq
	fsys := l.opts.FS

	final := path.Join(l.opts.Dir, snapName(cover))
	tmp := final + tmpSuffix
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot temp: %w", err)
	}
	cw := &crcCountWriter{w: f}
	if err := write(cw); err != nil {
		f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	ft := makeSnapshotFooter(uint64(cw.n), l.appended.Load(), cw.crc)
	if _, err := f.Write(ft[:]); err != nil {
		f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("wal: snapshot footer: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("wal: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	if err := fsys.SyncDir(l.opts.Dir); err != nil {
		return fmt.Errorf("wal: snapshot dir sync: %w", err)
	}

	// Compaction: everything the snapshot covers is garbage. Failures
	// here cost only disk space; recovery ignores covered files.
	names, err := fsys.ReadDir(l.opts.Dir)
	if err != nil {
		l.opts.Warnf("wal: compact readdir: %v", err)
		return nil
	}
	for _, name := range names {
		if seq, ok := parseSeq(name, segmentPrefix, segmentSuffix); ok && seq < cover {
			if err := fsys.Remove(path.Join(l.opts.Dir, name)); err != nil {
				l.opts.Warnf("wal: compact %s: %v", name, err)
			}
			continue
		}
		if seq, ok := parseSeq(name, snapPrefix, snapSuffix); ok && seq < cover {
			if err := fsys.Remove(path.Join(l.opts.Dir, name)); err != nil {
				l.opts.Warnf("wal: compact %s: %v", name, err)
			}
		}
	}
	if err := fsys.SyncDir(l.opts.Dir); err != nil {
		l.opts.Warnf("wal: compact dir sync: %v", err)
	}
	return nil
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.cur != nil {
		if l.dirty {
			err = l.cur.Sync()
		}
		if cerr := l.cur.Close(); err == nil {
			err = cerr
		}
		l.cur = nil
	}
	return err
}

// SegmentSeq returns the index of the segment currently appended to.
func (l *Log) SegmentSeq() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// AppendedRecords returns the count of records appended by this
// process (recovery replay excluded). Together with a snapshot
// footer's Records baseline it measures replication lag; the counts
// are only comparable within one log lifetime.
func (l *Log) AppendedRecords() uint64 { return l.appended.Load() }

// Tail returns the cursor one past the last written frame — where the
// next append will land.
func (l *Log) Tail() Cursor {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Cursor{Seg: l.seq, Off: l.curSize}
}

// LatestSnapshot returns the newest snapshot file's raw bytes —
// footer included, so a remote reader can verify them with
// SplitSnapshotFooter — along with the cursor where the log tail past
// it begins and the verified footer. Snapshots without a footer are
// refused: a replication bootstrap takes a fresh Snapshot first, so
// it always reads one this process wrote.
func (l *Log) LatestSnapshot() ([]byte, Cursor, SnapshotFooter, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, Cursor{}, SnapshotFooter{}, ErrClosed
	}
	fsys, dir := l.opts.FS, l.opts.Dir
	l.mu.Unlock()
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, Cursor{}, SnapshotFooter{}, fmt.Errorf("wal: latest snapshot: %w", err)
	}
	best := -1
	for _, name := range names {
		if seq, ok := parseSeq(name, snapPrefix, snapSuffix); ok && seq > best {
			best = seq
		}
	}
	if best < 0 {
		return nil, Cursor{}, SnapshotFooter{}, errors.New("wal: no snapshot")
	}
	data, err := readFile(fsys, path.Join(dir, snapName(best)))
	if err != nil {
		return nil, Cursor{}, SnapshotFooter{}, fmt.Errorf("wal: latest snapshot: %w", err)
	}
	_, ft, present, err := SplitSnapshotFooter(data)
	if err != nil {
		return nil, Cursor{}, SnapshotFooter{}, err
	}
	if !present {
		return nil, Cursor{}, SnapshotFooter{}, errors.New("wal: snapshot has no verification footer")
	}
	return data, Cursor{Seg: best}, ft, nil
}

// appendFrame appends rec's wire frame to buf.
func appendFrame(buf []byte, rec Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	buf = append(buf, byte(rec.Type))
	switch rec.Type {
	case TypeRating:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(rec.Rating.Rater)))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(rec.Rating.Object)))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.Rating.Value))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.Rating.Time))
	case TypeProcess:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.Start))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.End))
	case TypeBarrier:
		buf = binary.LittleEndian.AppendUint64(buf, rec.Seq)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.Start))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.End))
	default:
		panic(fmt.Sprintf("wal: unknown record type %d", rec.Type))
	}
	payload := buf[start+frameHeader:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf
}

// parseFrames decodes data's frames. It returns the decoded records,
// the offset just past the last intact frame, and a non-nil error
// describing the first torn or corrupt frame (nil when data parses
// cleanly to its end).
func parseFrames(data []byte) (recs []Record, good int, err error) {
	off := 0
	for off < len(data) {
		rec, next, perr := parseFrame(data, off)
		if perr != nil {
			return recs, off, perr
		}
		recs = append(recs, rec)
		off = next
	}
	return recs, off, nil
}

func decodeRecord(payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, errors.New("empty record")
	}
	switch RecordType(payload[0]) {
	case TypeRating:
		if len(payload) != 1+4*8 {
			return Record{}, fmt.Errorf("rating record length %d", len(payload))
		}
		return Record{
			Type: TypeRating,
			Rating: rating.Rating{
				Rater:  rating.RaterID(int64(binary.LittleEndian.Uint64(payload[1:]))),
				Object: rating.ObjectID(int64(binary.LittleEndian.Uint64(payload[9:]))),
				Value:  math.Float64frombits(binary.LittleEndian.Uint64(payload[17:])),
				Time:   math.Float64frombits(binary.LittleEndian.Uint64(payload[25:])),
			},
		}, nil
	case TypeProcess:
		if len(payload) != 1+2*8 {
			return Record{}, fmt.Errorf("process record length %d", len(payload))
		}
		return Record{
			Type:  TypeProcess,
			Start: math.Float64frombits(binary.LittleEndian.Uint64(payload[1:])),
			End:   math.Float64frombits(binary.LittleEndian.Uint64(payload[9:])),
		}, nil
	case TypeBarrier:
		if len(payload) != 1+3*8 {
			return Record{}, fmt.Errorf("barrier record length %d", len(payload))
		}
		return Record{
			Type:  TypeBarrier,
			Seq:   binary.LittleEndian.Uint64(payload[1:]),
			Start: math.Float64frombits(binary.LittleEndian.Uint64(payload[9:])),
			End:   math.Float64frombits(binary.LittleEndian.Uint64(payload[17:])),
		}, nil
	default:
		return Record{}, fmt.Errorf("unknown record type %d", payload[0])
	}
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Target consumes replayed records. *core.System and *core.SafeSystem
// satisfy it via a thin adapter (see cmd/ratingd); keeping the
// interface this narrow lets wal avoid importing core.
type Target interface {
	Submit(r rating.Rating) error
	Process(start, end float64) error
}

// Replay applies recs to t in order. Individual record failures are
// warned and skipped — recovery prefers serving most of the state
// over refusing to start — and the count of applied records is
// returned.
func Replay(t Target, recs []Record, warnf func(format string, args ...any)) int {
	if warnf == nil {
		warnf = func(string, ...any) {}
	}
	applied := 0
	for i, rec := range recs {
		var err error
		switch rec.Type {
		case TypeRating:
			err = t.Submit(rec.Rating)
		case TypeProcess:
			err = t.Process(rec.Start, rec.End)
		case TypeBarrier:
			// A lone shard log replays its barriers as plain windows;
			// multi-log alignment is the shard recovery's job.
			err = t.Process(rec.Start, rec.End)
		default:
			err = fmt.Errorf("unknown record type %d", rec.Type)
		}
		if err != nil {
			warnf("wal: replay record %d: %v", i, err)
			continue
		}
		applied++
	}
	return applied
}
