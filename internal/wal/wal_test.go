package wal

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/rating"
)

func testOptions(fs faultinject.FS) Options {
	return Options{Dir: "w", FS: fs, Policy: SyncAlways, SegmentBytes: 1 << 20}
}

func mkRating(i int) Record {
	return RatingRecord(rating.Rating{
		Rater:  rating.RaterID(i % 7),
		Object: rating.ObjectID(i % 3),
		Value:  float64(i%10) / 10,
		Time:   float64(i),
	})
}

func recordTimes(recs []Record) []float64 {
	out := make([]float64, len(recs))
	for i, r := range recs {
		if r.Type == TypeRating {
			out[i] = r.Rating.Time
		} else {
			out[i] = r.Start
		}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	fs := faultinject.NewMemFS()
	l, rec, err := Open(testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Records) != 0 || rec.Torn {
		t.Fatalf("fresh dir recovery: %+v", rec)
	}
	var want []Record
	for i := 0; i < 50; i++ {
		r := mkRating(i)
		if i%10 == 9 {
			r = ProcessRecord(float64(i-10), float64(i))
		}
		want = append(want, r)
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec2, err := Open(testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Torn {
		t.Fatal("clean log reported torn")
	}
	if len(rec2.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec2.Records), len(want))
	}
	for i := range want {
		if rec2.Records[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, rec2.Records[i], want[i])
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	fs := faultinject.NewMemFS()
	opts := testOptions(fs)
	opts.SegmentBytes = 128 // a few frames per segment
	l, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := l.Append(mkRating(i)); err != nil {
			t.Fatal(err)
		}
	}
	if l.SegmentSeq() < 3 {
		t.Fatalf("no rotation happened: seq %d", l.SegmentSeq())
	}
	l.Close()

	_, rec, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 40 || rec.Segments < 4 {
		t.Fatalf("records=%d segments=%d", len(rec.Records), rec.Segments)
	}
}

func TestSnapshotCompaction(t *testing.T) {
	fs := faultinject.NewMemFS()
	opts := testOptions(fs)
	opts.SegmentBytes = 128
	l, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := l.Append(mkRating(i)); err != nil {
			t.Fatal(err)
		}
	}
	state := "state-after-30"
	if err := l.Snapshot(func(w io.Writer) error {
		_, err := io.WriteString(w, state)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for i := 30; i < 35; i++ {
		if err := l.Append(mkRating(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Covered segments are gone from the durable view; only the
	// post-snapshot tail remains (2 segments: 5 records rotate once
	// at this segment size).
	segs := 0
	for name := range fs.DurableFiles() {
		if seq, ok := parseSeq(strings.TrimPrefix(name, "w/"), segmentPrefix, segmentSuffix); ok {
			segs++
			if seq < 30/4 {
				t.Fatalf("covered segment %s survived compaction", name)
			}
		}
	}
	if segs != 2 {
		t.Fatalf("%d segments after compaction, want 2", segs)
	}

	_, rec, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != state {
		t.Fatalf("snapshot %q, want %q", rec.Snapshot, state)
	}
	if len(rec.Records) != 5 {
		t.Fatalf("tail has %d records, want 5", len(rec.Records))
	}
	if rec.Records[0].Rating.Time != 30 {
		t.Fatalf("tail starts at %+v", rec.Records[0])
	}
}

func TestSecondSnapshotSupersedesFirst(t *testing.T) {
	fs := faultinject.NewMemFS()
	opts := testOptions(fs)
	l, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	writeState := func(s string) func(io.Writer) error {
		return func(w io.Writer) error { _, err := io.WriteString(w, s); return err }
	}
	l.Append(mkRating(0))
	if err := l.Snapshot(writeState("one")); err != nil {
		t.Fatal(err)
	}
	l.Append(mkRating(1))
	if err := l.Snapshot(writeState("two")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, rec, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != "two" || len(rec.Records) != 0 {
		t.Fatalf("snapshot=%q tail=%d", rec.Snapshot, len(rec.Records))
	}
	snaps := 0
	for name := range fs.DurableFiles() {
		if strings.Contains(name, snapPrefix) {
			snaps++
		}
	}
	if snaps != 1 {
		t.Fatalf("%d snapshots on disk, want 1", snaps)
	}
}

func TestAppendAfterRecoveryContinuesLog(t *testing.T) {
	fs := faultinject.NewMemFS()
	l, _, err := Open(testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	l.Append(mkRating(0))
	l.Close()
	l2, rec, err := Open(testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 {
		t.Fatalf("tail %d", len(rec.Records))
	}
	l2.Append(mkRating(1))
	l2.Close()
	_, rec2, err := Open(testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Records) != 2 {
		t.Fatalf("after reopen-append: %d records", len(rec2.Records))
	}
}

func TestFailedAppendSealsSegment(t *testing.T) {
	fs := faultinject.NewMemFS()
	l, _, err := Open(testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(mkRating(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Inject one short write; the append must fail and the log must
	// keep the damage out of the record stream.
	fail := true
	fs.SetInjector(func(op faultinject.Op) *faultinject.Fault {
		if op.Kind == "write" && fail {
			fail = false
			return &faultinject.Fault{Err: faultinject.ErrInjected, Keep: 5}
		}
		return nil
	})
	if err := l.Append(mkRating(3)); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("want injected failure, got %v", err)
	}
	// The log stays usable.
	for i := 4; i < 6; i++ {
		if err := l.Append(mkRating(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	_, rec, err := Open(testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	got := recordTimes(rec.Records)
	want := []float64{0, 1, 2, 4, 5}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	if rec.Torn {
		t.Fatal("sealed damage leaked into recovery as a tear")
	}
}

func TestOrphanTempFileRemoved(t *testing.T) {
	fs := faultinject.NewMemFS()
	l, _, err := Open(testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	l.Append(mkRating(0))
	l.Close()
	// Simulate a crash mid-snapshot: a stray .tmp file.
	files := fs.DurableFiles()
	files["w/snap-00000099.json.tmp"] = []byte("partial")
	fs2 := faultinject.NewMemFSFromFiles(files)
	var warned bool
	opts := testOptions(fs2)
	opts.Warnf = func(string, ...any) { warned = true }
	_, rec, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 || rec.Snapshot != nil {
		t.Fatalf("recovery: %+v", rec)
	}
	if !warned {
		t.Fatal("orphan temp file not warned about")
	}
}

func TestRecordEncodingExhaustive(t *testing.T) {
	cases := []Record{
		RatingRecord(rating.Rating{Rater: -1, Object: 1 << 40, Value: 0.123456789, Time: -7.5}),
		ProcessRecord(0, 30),
		ProcessRecord(-1e300, 1e300),
		BarrierRecord(0, 0, 30),
		BarrierRecord(1<<63, -7.25, 1e300),
	}
	for _, want := range cases {
		frame := appendFrame(nil, want)
		recs, good, err := parseFrames(frame)
		if err != nil || good != len(frame) || len(recs) != 1 || recs[0] != want {
			t.Fatalf("round trip %+v: recs=%v good=%d err=%v", want, recs, good, err)
		}
	}
}

func TestCloseIsIdempotentAndAppendAfterCloseFails(t *testing.T) {
	fs := faultinject.NewMemFS()
	l, _, err := Open(testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(mkRating(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
}

func TestOnRealFilesystem(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir + "/wal", Policy: SyncAlways, SegmentBytes: 256}
	l, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := l.Append(mkRating(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Snapshot(func(w io.Writer) error {
		_, err := io.WriteString(w, "real-fs-state")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 25; i++ {
		if err := l.Append(mkRating(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != "real-fs-state" || len(rec.Records) != 5 {
		t.Fatalf("real fs recovery: snapshot=%q tail=%d", rec.Snapshot, len(rec.Records))
	}
}
