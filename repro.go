// Package repro is a trust-enhanced online rating system with
// AR-signal-modeling detection of collaborative rating fraud — a
// from-scratch Go reproduction of Yang, Sun, Ren & Yang, "Building
// Trust in Online Rating Systems Through Signal Modeling" (ICDCS 2007).
//
// The core idea: ratings arriving over time are samples of a random
// process. Honest ratings behave like noise around the true quality,
// while a colluding clique — even one smart enough to keep its bias
// moderate so majority-rule filters cannot see it — injects a
// correlated, highly predictable "signal". Fitting an autoregressive
// model (covariance method) to each window of ratings and watching the
// normalized model error exposes the attack: the error collapses inside
// attacked windows (Procedure 1). Suspicion mass feeds a beta-function
// trust record per rater (Procedure 2), and aggregation weighs raters
// by trust above the neutral 0.5 (the paper's "Method 3"), so even
// undetected colluders lose influence.
//
// # Quick start
//
//	sys, err := repro.NewSystem(repro.Config{})
//	if err != nil { ... }
//	_ = sys.Submit(repro.Rating{Rater: 1, Object: 42, Value: 0.8, Time: 3.5})
//	// ... submit more ratings, then run a maintenance pass:
//	report, err := sys.ProcessWindow(0, 30) // days [0, 30)
//	agg, err := sys.Aggregate(42)           // trust-weighted rating
//	trust := sys.TrustIn(1)                 // (S+1)/(S+F+2)
//
// Standalone detection over one object's time-sorted ratings:
//
//	rep, err := repro.Detect(ratings, repro.DetectorConfig{})
//	for _, i := range rep.SuspiciousWindows() { ... }
//
// The subsystems (AR estimators, rating filters, trust models, workload
// generators, experiment runners) live under internal/ and are surfaced
// here through aliases; see DESIGN.md for the architecture and
// EXPERIMENTS.md for the paper-versus-measured record of every table
// and figure.
package repro

import (
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/filter"
	"repro/internal/rating"
	"repro/internal/server"
	"repro/internal/signal"
	"repro/internal/trust"
)

// Core data model.
type (
	// Rating is one score for one object by one rater at one time.
	Rating = rating.Rating
	// RaterID identifies a rater.
	RaterID = rating.RaterID
	// ObjectID identifies a rated object.
	ObjectID = rating.ObjectID
	// Window is a contiguous run of ratings with its covering interval.
	Window = rating.Window
)

// The assembled system (Fig 1 of the paper).
type (
	// System is the trust-enhanced rating system: filter + detector +
	// trust manager + trust-weighted aggregation.
	System = core.System
	// Config assembles a System; zero fields take the paper's defaults.
	Config = core.Config
	// ProcessReport summarizes one maintenance window.
	ProcessReport = core.ProcessReport
	// ObjectReport is the per-object outcome within a ProcessReport.
	ObjectReport = core.ObjectReport
	// AggregateResult is the outcome of aggregating one object.
	AggregateResult = core.AggregateResult
)

// NewSystem builds a System. The zero Config gives the paper's §IV
// pipeline: Beta filter (q = 0.1), covariance-method AR detector, beta
// trust with b = 1, and modified-weighted-average aggregation with a
// simple-average fallback.
func NewSystem(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// NoFallback disables the aggregation fallback; Aggregate then returns
// ErrNoTrustedRaters when every rater is at the trust floor.
var NoFallback = core.NoFallback

// SafeSystem is a mutex-guarded System for concurrent use (the HTTP
// service is built on it). It mirrors System's API and adds snapshot
// persistence under the lock.
type SafeSystem = core.SafeSystem

// NewSafeSystem builds a concurrency-safe System.
func NewSafeSystem(cfg Config) (*SafeSystem, error) { return core.NewSafeSystem(cfg) }

// Scheduler drives a System's maintenance on a fixed cadence: feed it
// the current time via AdvanceTo and it runs every complete window.
type Scheduler = core.Scheduler

// NewScheduler wraps sys with a maintenance window of width days
// starting at start.
func NewScheduler(sys *System, start, width float64) (*Scheduler, error) {
	return core.NewScheduler(sys, start, width)
}

// HTTP service over a SafeSystem (see cmd/ratingd for the daemon).
type (
	// Server exposes the system as a JSON-over-HTTP service; it
	// implements http.Handler.
	Server = server.Server
	// ServiceClient is the typed HTTP client for a Server.
	ServiceClient = server.Client
	// RatingPayload is the wire form of one rating.
	RatingPayload = server.RatingPayload
)

// NewServer builds the HTTP service.
func NewServer(cfg Config) (*Server, error) { return server.New(cfg) }

// NewServiceClient builds a client for a Server at base (e.g.
// "http://localhost:8080"); a nil *http.Client means the default.
var NewServiceClient = server.NewClient

// Procedure 1 — the AR signal-modeling detector.
type (
	// DetectorConfig parameterizes Detect; the zero value selects the
	// paper's defaults (50-rating windows, order 4).
	DetectorConfig = detector.Config
	// DetectionReport is the outcome of one detection run.
	DetectionReport = detector.Report
	// WindowReport is the per-window outcome.
	WindowReport = detector.WindowReport
	// RaterStats aggregates per-rater suspicion over one run.
	RaterStats = detector.RaterStats
	// WindowMode selects count- or time-based windowing.
	WindowMode = detector.WindowMode
)

// Window modes for DetectorConfig.
const (
	WindowByCount = detector.WindowByCount
	WindowByTime  = detector.WindowByTime
)

// Detect runs Procedure 1 over one object's time-sorted ratings.
func Detect(rs []Rating, cfg DetectorConfig) (DetectionReport, error) {
	return detector.Detect(rs, cfg)
}

// WhitenessConfig parameterizes the Ljung-Box baseline detector.
type WhitenessConfig = detector.WhitenessConfig

// DetectWhiteness is the whiteness-test baseline detector: the
// textbook rendering of the paper's "honest ratings are white noise"
// premise. It mostly misses the smart attack (see ablation-whiteness);
// it exists for comparison.
func DetectWhiteness(rs []Rating, cfg WhitenessConfig) (DetectionReport, error) {
	return detector.DetectWhiteness(rs, cfg)
}

// MergeDetections accumulates per-rater statistics across per-object
// reports (the paper's multi-object extension of Procedure 1).
func MergeDetections(reports ...DetectionReport) map[RaterID]RaterStats {
	return detector.Merge(reports...)
}

// DetectorStream is the online form of Procedure 1: push ratings as
// they arrive and receive window reports at each count-window boundary,
// with identical results to batch Detect.
type DetectorStream = detector.Stream

// NewDetectorStream builds a streaming detector (count windows only).
func NewDetectorStream(cfg DetectorConfig) (*DetectorStream, error) {
	return detector.NewStream(cfg)
}

// AR model estimation (the signal substrate), for direct use.
type (
	// ARModel is a fitted all-pole model with its normalized error.
	ARModel = signal.Model
	// AROptions selects the estimator and preprocessing.
	AROptions = signal.Options
	// ARMethod identifies an AR estimator.
	ARMethod = signal.Method
)

// AR estimators.
const (
	ARCovariance = signal.MethodCovariance
	ARYuleWalker = signal.MethodYuleWalker
	ARBurg       = signal.MethodBurg
)

// FitAR estimates an AR(order) model of x. The covariance method (the
// paper's choice) is the default.
func FitAR(x []float64, order int, opts AROptions) (ARModel, error) {
	return signal.Fit(x, order, opts)
}

// Order-selection criteria for SelectAROrder.
type (
	// ARCriterion scores candidate model orders.
	ARCriterion = signal.Criterion
	// AROrderScore is one candidate order's fit and score.
	AROrderScore = signal.OrderScore
)

// Order-selection criteria.
const (
	ARCriterionFPE = signal.CriterionFPE
	ARCriterionAIC = signal.CriterionAIC
	ARCriterionMDL = signal.CriterionMDL
)

// SelectAROrder fits orders 1..maxOrder and returns the criterion
// minimizer plus every candidate, for detector tuning.
func SelectAROrder(x []float64, maxOrder int, criterion ARCriterion, opts AROptions) (AROrderScore, []AROrderScore, error) {
	return signal.SelectOrder(x, maxOrder, criterion, opts)
}

// ARStability analyzes a(1..p) with the step-down recursion: stable iff
// every recovered reflection coefficient has magnitude below one.
func ARStability(coeffs []float64) (stable bool, reflection []float64, err error) {
	return signal.Stability(coeffs)
}

// Adversarial attack strategies (internal/attack): campaign planners
// used by the ablation-attacks robustness study and available for
// red-teaming deployments.
type (
	// AttackStrategy plans a collusion campaign.
	AttackStrategy = attack.Strategy
	// AttackParams shape a campaign.
	AttackParams = attack.Params
	// AttackQuality answers an object's true quality at a time, so
	// camouflage phases can rate honestly.
	AttackQuality = attack.Quality
)

// AttackStrategies returns every implemented strategy, the paper's
// type-2 baseline first.
func AttackStrategies() []AttackStrategy { return attack.All() }

// Rating filters (feature extraction I and baselines).
type (
	// Filter partitions raw ratings into normal and abnormal.
	Filter = filter.Filter
	// FilterResult is a filter's partition of a batch.
	FilterResult = filter.Result
	// BetaFilter is the Whitby-Jøsang-Indulska filter the paper's
	// system uses (sensitivity Q, §IV runs 0.1).
	BetaFilter = filter.Beta
	// NoopFilter accepts everything.
	NoopFilter = filter.Noop
	// QuantileFilter trims the empirical tails.
	QuantileFilter = filter.Quantile
	// EntropyFilter is the Weng-Miao-Goh entropy baseline.
	EntropyFilter = filter.Entropy
	// EndorsementFilter is the Chen-Singh endorsement baseline.
	EndorsementFilter = filter.Endorsement
	// ClusterFilter is the Dellarocas clustering baseline.
	ClusterFilter = filter.Cluster
)

// Trust management (Procedure 2) and aggregation methods.
type (
	// TrustConfig parameterizes the trust manager.
	TrustConfig = trust.ManagerConfig
	// TrustManager maintains beta-function trust records.
	TrustManager = trust.Manager
	// TrustRecord is one rater's (S, F) evidence state.
	TrustRecord = trust.Record
	// Observation is one maintenance interval's evidence on a rater.
	Observation = trust.Observation
	// Recommendation is a rater's statement about another rater.
	Recommendation = trust.Recommendation
	// Aggregator combines ratings and trust into one value.
	Aggregator = trust.Aggregator
	// SimpleAverage is Method 1.
	SimpleAverage = trust.SimpleAverage
	// BetaAggregation is Method 2 (Jøsang-Ismail beta reputation).
	BetaAggregation = trust.BetaAggregation
	// ModifiedWeightedAverage is Method 3, the paper's pick.
	ModifiedWeightedAverage = trust.ModifiedWeightedAverage
	// TrustWeightedBeta is Method 4 (the trust model of Sun et al.).
	TrustWeightedBeta = trust.TrustWeightedBeta
)

// NewTrustManager builds a standalone trust manager (Procedure 2
// without the rest of the pipeline).
func NewTrustManager(cfg TrustConfig) (*TrustManager, error) {
	return trust.NewManager(cfg)
}

// AggregationMethods returns the paper's four aggregators in M1..M4
// table order.
func AggregationMethods() []Aggregator { return trust.Methods() }

// EntropyTrust maps a trust probability to the entropy trust value of
// Sun et al. ([8]): 1−H(p) above neutral, H(p)−1 below.
func EntropyTrust(p float64) float64 { return trust.EntropyTrust(p) }

// Common error values, re-exported for errors.Is matching.
var (
	// ErrNoTrustedRaters is returned by trust-weighted aggregators when
	// every rater is at or below the trust floor.
	ErrNoTrustedRaters = trust.ErrNoTrustedRaters
	// ErrNoRatings is returned for empty aggregation batches.
	ErrNoRatings = trust.ErrNoRatings
	// ErrUnknownObject is returned for objects with no ratings.
	ErrUnknownObject = rating.ErrUnknownObject
)

// Subjective-logic opinion algebra (the formal backbone of the beta
// reputation system [30]).
type (
	// Opinion is a (belief, disbelief, uncertainty, base-rate) tuple.
	Opinion = trust.Opinion
	// SubjectiveLogicAggregation is the extension aggregator built on
	// discounting + consensus (shares Method 4's weakness; see the
	// trust-floor ablation).
	SubjectiveLogicAggregation = trust.SubjectiveLogicAggregation
)

// Opinion constructors and operators.
var (
	// OpinionFromEvidence maps (S, F) observations to an opinion.
	OpinionFromEvidence = trust.OpinionFromEvidence
	// OpinionFromRating maps one [0,1] rating to a one-observation
	// opinion.
	OpinionFromRating = trust.OpinionFromRating
	// DiscountOpinion is Jøsang's discounting operator.
	DiscountOpinion = trust.Discount
	// ConsensusOpinion is Jøsang's consensus operator.
	ConsensusOpinion = trust.Consensus
)
