package repro_test

import (
	"errors"
	"math"
	"testing"

	"repro"
	"repro/internal/randx"
	"repro/internal/sim"
)

// TestFacadeEndToEnd drives the public API exactly as the README's
// quick start does: build a system, submit a trace containing a smart
// collusion attack, run monthly maintenance, and confirm that trust
// separates and the aggregate resists the attack.
func TestFacadeEndToEnd(t *testing.T) {
	sys, err := repro.NewSystem(repro.Config{
		Detector: repro.DetectorConfig{Threshold: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}

	p := sim.DefaultIllustrative()
	p.BadVar = 0.002
	ls, err := sim.GenerateIllustrative(randx.New(1), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range ls {
		if err := sys.Submit(l.Rating); err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range [][2]float64{{0, 30}, {30, 60}} {
		if _, err := sys.ProcessWindow(w[0], w[1]); err != nil {
			t.Fatal(err)
		}
	}

	agg, err := sys.Aggregate(0)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Value < 0 || agg.Value > 1 {
		t.Fatalf("aggregate %g out of range", agg.Value)
	}

	var honest, colluder []float64
	for id, tr := range sys.TrustSnapshot() {
		if id >= 100000 {
			colluder = append(colluder, tr)
		} else {
			honest = append(honest, tr)
		}
	}
	if len(colluder) == 0 {
		t.Fatal("no colluders tracked")
	}
	if mean(colluder) >= mean(honest) {
		t.Fatalf("colluder trust %.3f not below honest %.3f", mean(colluder), mean(honest))
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

func TestFacadeDetect(t *testing.T) {
	var rs []repro.Rating
	for i := 0; i < 60; i++ {
		rs = append(rs, repro.Rating{Rater: repro.RaterID(i), Value: 0.8, Time: float64(i)})
	}
	rep, err := repro.Detect(rs, repro.DetectorConfig{
		Mode: repro.WindowByCount, Size: 20, Step: 10, Threshold: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SuspiciousWindows()) == 0 {
		t.Fatal("constant clique not flagged")
	}
	merged := repro.MergeDetections(rep, rep)
	if merged[0].TotalRatings != 2 {
		t.Fatalf("merge: %+v", merged[0])
	}
}

func TestFacadeFitAR(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = math.Sin(0.3 * float64(i))
	}
	for _, method := range []repro.ARMethod{repro.ARCovariance, repro.ARYuleWalker, repro.ARBurg} {
		m, err := repro.FitAR(x, 4, repro.AROptions{Method: method})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if m.NormalizedError < 0 || m.NormalizedError > 1 {
			t.Fatalf("%v: error %g", method, m.NormalizedError)
		}
	}
}

func TestFacadeAggregators(t *testing.T) {
	methods := repro.AggregationMethods()
	if len(methods) != 4 {
		t.Fatalf("%d methods", len(methods))
	}
	ratings := []float64{0.8, 0.4}
	trusts := []float64{0.95, 0.6}
	for _, m := range methods {
		v, err := m.Aggregate(ratings, trusts)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if v < 0 || v > 1 {
			t.Fatalf("%s: %g", m.Name(), v)
		}
	}
	if _, err := (repro.ModifiedWeightedAverage{}).Aggregate([]float64{0.5}, []float64{0.4}); !errors.Is(err, repro.ErrNoTrustedRaters) {
		t.Fatalf("floor error = %v", err)
	}
	if _, err := (repro.SimpleAverage{}).Aggregate(nil, nil); !errors.Is(err, repro.ErrNoRatings) {
		t.Fatalf("empty error = %v", err)
	}
}

func TestFacadeTrustManager(t *testing.T) {
	m, err := repro.NewTrustManager(repro.TrustConfig{B: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Update(1, repro.Observation{N: 10}, 1); err != nil {
		t.Fatal(err)
	}
	if m.Trust(1) <= 0.5 {
		t.Fatalf("trust %g", m.Trust(1))
	}
	if got := repro.EntropyTrust(0.5); got != 0 {
		t.Fatalf("EntropyTrust(0.5) = %g", got)
	}
}

func TestFacadeFilters(t *testing.T) {
	rs := []repro.Rating{
		{Rater: 1, Value: 0.8, Time: 1},
		{Rater: 2, Value: 0.81, Time: 2},
		{Rater: 3, Value: 0.79, Time: 3},
	}
	var filters = []repro.Filter{
		repro.NoopFilter{},
		repro.BetaFilter{Q: 0.1},
		repro.QuantileFilter{Q: 0.1},
		repro.EntropyFilter{},
		repro.EndorsementFilter{},
		repro.ClusterFilter{},
	}
	for _, f := range filters {
		res, err := f.Apply(rs)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if len(res.Accepted)+len(res.Rejected) != len(rs) {
			t.Fatalf("%s: lost ratings", f.Name())
		}
	}
}

func TestFacadeUnknownObject(t *testing.T) {
	sys, err := repro.NewSystem(repro.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Aggregate(1); !errors.Is(err, repro.ErrUnknownObject) {
		t.Fatalf("err = %v", err)
	}
}

func TestFacadeNoFallback(t *testing.T) {
	sys, err := repro.NewSystem(repro.Config{
		Filter:   repro.NoopFilter{},
		Fallback: repro.NoFallback,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Submit(repro.Rating{Rater: 1, Object: 1, Value: 0.5, Time: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Aggregate(1); !errors.Is(err, repro.ErrNoTrustedRaters) {
		t.Fatalf("err = %v", err)
	}
}
